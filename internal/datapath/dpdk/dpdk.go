// Package dpdk implements the DPDK datapath plugin: the "fast path" of
// INSANE (§5.2: DPDK is chosen when acceleration is requested and resource
// usage is not a concern).
//
// The plugin models a poll-mode driver on a kernel-bypassed NIC: the
// runtime's polling thread is the lcore, packets are moved in bursts
// (rte_eth_tx_burst/rx_burst semantics), memory comes from the runtime's
// registered pools, and there are no kernel crossings. Packets on this
// path are *framed*: the runtime's packet processing engine builds the
// Ethernet/IPv4/UDP headers into the slot headroom, so the plugin DMAs the
// frame straight from application memory (zero-copy, Table 1).
package dpdk

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/netstack"
)

// Plugin creates DPDK endpoints on hosts whose NIC exposes a PMD.
type Plugin struct{}

var _ datapath.Plugin = Plugin{}

// Tech returns model.TechDPDK.
func (Plugin) Tech() model.Tech { return model.TechDPDK }

// Info returns the Table 1 record for DPDK.
func (Plugin) Info() model.TechInfo { return model.Info(model.TechDPDK) }

// Available reports whether the host has DPDK support.
func (Plugin) Available(caps datapath.Caps) bool { return caps.DPDK }

// Open takes over the NIC port in poll mode.
func (Plugin) Open(cfg datapath.Config) (datapath.Endpoint, error) {
	if cfg.Port == nil || cfg.Alloc == nil {
		return nil, fmt.Errorf("dpdk: incomplete config")
	}
	return &endpoint{cfg: cfg, costs: model.DPDK()}, nil
}

// endpoint models one PMD-driven port. Not safe for concurrent use: one
// lcore (polling thread) owns it, as in DPDK's run-to-completion model.
type endpoint struct {
	cfg    datapath.Config
	costs  model.TechCosts
	closed atomic.Bool

	txPackets, rxPackets atomic.Uint64
	txBytes, rxBytes     atomic.Uint64
	drops                atomic.Uint64
	emptyPolls           atomic.Uint64
}

// Tech returns model.TechDPDK.
func (e *endpoint) Tech() model.Tech { return model.TechDPDK }

// MTU returns the maximum message payload (jumbo frames enabled, §6.2).
func (e *endpoint) MTU() int { return netstack.MaxPayload(e.cfg.Port.MTU()) }

// Stats returns a snapshot of the endpoint counters.
func (e *endpoint) Stats() datapath.Stats {
	return datapath.Stats{
		TxPackets:  e.txPackets.Load(),
		RxPackets:  e.rxPackets.Load(),
		TxBytes:    e.txBytes.Load(),
		RxBytes:    e.rxBytes.Load(),
		Drops:      e.drops.Load(),
		EmptyPolls: e.emptyPolls.Load(),
	}
}

// Send transmits a burst of framed packets (tx_burst). The per-burst
// doorbell cost amortizes over the burst — INSANE's opportunistic batching
// leans on exactly this property (§6.2).
func (e *endpoint) Send(pkts []*datapath.Packet, _ netstack.Endpoint) (int, error) {
	if e.closed.Load() {
		return 0, datapath.ErrClosed
	}
	burst := len(pkts)
	for i, p := range pkts {
		if !p.Framed {
			return i, fmt.Errorf("dpdk: unframed packet; the packet processing engine must encode first")
		}
		tb := e.cfg.Testbed
		payload := p.Len - netstack.HeadersLen
		p.Charge(e.costs.TxDriver, payload, burst, tb)
		p.Charge(e.costs.TxComplete, payload, burst, tb)
		p.Charge(e.costs.NICTx, payload, burst, tb)
		if err := e.cfg.Port.Transmit(p.Bytes(), p.VTime, p.Breakdown); err != nil {
			return i, fmt.Errorf("dpdk: %w", err)
		}
		e.txPackets.Add(1)
		e.txBytes.Add(uint64(p.Len))
	}
	return len(pkts), nil
}

// Poll busy-polls the RX ring (rx_burst): frames are returned still framed
// for the packet processing engine, in memory-pool slots where the NIC
// "DMAed" them.
func (e *endpoint) Poll(max int) ([]*datapath.Packet, error) {
	if e.closed.Load() {
		return nil, datapath.ErrClosed
	}
	if max > e.cfg.EffectiveBurst() {
		max = e.cfg.EffectiveBurst()
	}
	var out []*datapath.Packet
	for len(out) < max {
		frame, ok := e.cfg.Port.TryRecv()
		if !ok {
			break
		}
		slot, buf, err := e.cfg.Alloc(len(frame.Data))
		if err != nil {
			e.drops.Add(1)
			continue
		}
		copy(buf, frame.Data) // stands in for NIC DMA into the mempool
		out = append(out, &datapath.Packet{
			Slot:      slot,
			Buf:       buf,
			Off:       0,
			Len:       len(frame.Data),
			Framed:    true,
			VTime:     frame.VTime,
			Breakdown: frame.Breakdown,
		})
	}
	burst := len(out)
	for _, p := range out {
		payload := p.Len - netstack.HeadersLen
		p.Charge(e.costs.NICRx, payload, burst, e.cfg.Testbed)
		p.Charge(e.costs.RxPoll, payload, burst, e.cfg.Testbed)
		e.rxPackets.Add(1)
		e.rxBytes.Add(uint64(p.Len))
	}
	if burst == 0 {
		e.emptyPolls.Add(1) // busy-poll burn: DPDK's CPU cost (Table 1)
	}
	return out, nil
}

// WaitRecv returns immediately: a PMD never blocks, it spins.
func (e *endpoint) WaitRecv(time.Duration) error {
	if e.closed.Load() {
		return datapath.ErrClosed
	}
	return nil
}

// Close releases the port back from poll mode.
func (e *endpoint) Close() error {
	e.closed.Store(true)
	return nil
}
