// Package xdp implements the AF_XDP datapath plugin: the resource-frugal
// accelerated path of INSANE (§5.2: chosen when acceleration is requested
// but CPU consumption is a concern — "XDP is generally slower but does not
// require a set of CPU cores to continuously spin").
//
// The plugin models an AF_XDP socket with a shared UMEM: packets are
// framed by the runtime's packet processing engine (like DPDK), but every
// packet pays an in-kernel driver hop (the eBPF program that forwards
// descriptors between the driver and the socket) instead of a busy-spinning
// lcore. Not part of the paper's measured C prototype (the integration was
// ongoing work); the cost profile is calibrated from the AF_XDP literature.
package xdp

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/fabric"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/netstack"
)

// Plugin creates AF_XDP endpoints on hosts whose driver supports XDP.
type Plugin struct{}

var _ datapath.Plugin = Plugin{}

// Tech returns model.TechXDP.
func (Plugin) Tech() model.Tech { return model.TechXDP }

// Info returns the Table 1 record for XDP.
func (Plugin) Info() model.TechInfo { return model.Info(model.TechXDP) }

// Available reports whether the host driver supports XDP.
func (Plugin) Available(caps datapath.Caps) bool { return caps.XDP }

// Open binds an AF_XDP-style socket to the port.
func (Plugin) Open(cfg datapath.Config) (datapath.Endpoint, error) {
	if cfg.Port == nil || cfg.Alloc == nil {
		return nil, fmt.Errorf("xdp: incomplete config")
	}
	return &endpoint{cfg: cfg, costs: model.XDP()}, nil
}

// endpoint models one AF_XDP socket: fill/completion ring interaction is
// represented by the UMEM slot allocation plus the per-packet eBPF hop
// costs. Owned by a single polling thread.
type endpoint struct {
	cfg   datapath.Config
	costs model.TechCosts
	// pendingFrames holds frames consumed by a blocking WaitRecv,
	// processed by the next Poll.
	pendingFrames []fabric.Frame
	closed        atomic.Bool

	txPackets, rxPackets atomic.Uint64
	txBytes, rxBytes     atomic.Uint64
	drops                atomic.Uint64
	emptyPolls           atomic.Uint64
}

// Tech returns model.TechXDP.
func (e *endpoint) Tech() model.Tech { return model.TechXDP }

// MTU returns the maximum message payload.
func (e *endpoint) MTU() int { return netstack.MaxPayload(e.cfg.Port.MTU()) }

// Stats returns a snapshot of the endpoint counters.
func (e *endpoint) Stats() datapath.Stats {
	return datapath.Stats{
		TxPackets:  e.txPackets.Load(),
		RxPackets:  e.rxPackets.Load(),
		TxBytes:    e.txBytes.Load(),
		RxBytes:    e.rxBytes.Load(),
		Drops:      e.drops.Load(),
		EmptyPolls: e.emptyPolls.Load(),
	}
}

// Send places framed packets on the TX ring and kicks the kernel driver:
// zero-copy out of the UMEM, but each kick is a (cheap) syscall and each
// packet an eBPF hop.
func (e *endpoint) Send(pkts []*datapath.Packet, _ netstack.Endpoint) (int, error) {
	if e.closed.Load() {
		return 0, datapath.ErrClosed
	}
	burst := len(pkts)
	for i, p := range pkts {
		if !p.Framed {
			return i, fmt.Errorf("xdp: unframed packet; the packet processing engine must encode first")
		}
		tb := e.cfg.Testbed
		payload := p.Len - netstack.HeadersLen
		p.Charge(e.costs.TxSyscall, payload, burst, tb) // sendto() kick
		p.Charge(e.costs.TxStack, payload, burst, tb)   // eBPF driver hop
		p.Charge(e.costs.TxDriver, payload, burst, tb)  // descriptor ring
		p.Charge(e.costs.TxComplete, payload, burst, tb)
		p.Charge(e.costs.NICTx, payload, burst, tb)
		if err := e.cfg.Port.Transmit(p.Bytes(), p.VTime, p.Breakdown); err != nil {
			return i, fmt.Errorf("xdp: %w", err)
		}
		e.txPackets.Add(1)
		e.txBytes.Add(uint64(p.Len))
	}
	return len(pkts), nil
}

// Poll drains the RX ring: the eBPF program has already steered frames
// into UMEM; each one pays the per-packet driver-hop cost.
func (e *endpoint) Poll(max int) ([]*datapath.Packet, error) {
	if e.closed.Load() {
		return nil, datapath.ErrClosed
	}
	if max > e.cfg.EffectiveBurst() {
		max = e.cfg.EffectiveBurst()
	}
	var out []*datapath.Packet
	for len(out) < max {
		var frame fabric.Frame
		if len(e.pendingFrames) > 0 {
			frame = e.pendingFrames[0]
			e.pendingFrames = e.pendingFrames[1:]
		} else {
			var ok bool
			frame, ok = e.cfg.Port.TryRecv()
			if !ok {
				break
			}
		}
		slot, buf, err := e.cfg.Alloc(len(frame.Data))
		if err != nil {
			e.drops.Add(1)
			continue
		}
		copy(buf, frame.Data) // driver write into the UMEM
		out = append(out, &datapath.Packet{
			Slot:      slot,
			Buf:       buf,
			Off:       0,
			Len:       len(frame.Data),
			Framed:    true,
			VTime:     frame.VTime,
			Breakdown: frame.Breakdown,
		})
	}
	burst := len(out)
	for _, p := range out {
		tb := e.cfg.Testbed
		payload := p.Len - netstack.HeadersLen
		p.Charge(e.costs.NICRx, payload, burst, tb)
		p.Charge(e.costs.RxWait, payload, burst, tb)  // driver→socket latency
		p.Charge(e.costs.RxStack, payload, burst, tb) // eBPF hop
		p.Charge(e.costs.RxPoll, payload, burst, tb)
		e.rxPackets.Add(1)
		e.rxBytes.Add(uint64(p.Len))
	}
	if burst == 0 {
		e.emptyPolls.Add(1)
	}
	return out, nil
}

// WaitRecv blocks on the socket until frames are available (AF_XDP
// supports poll(2), which is what saves the spinning cores).
func (e *endpoint) WaitRecv(timeout time.Duration) error {
	if e.closed.Load() {
		return datapath.ErrClosed
	}
	if !e.cfg.Blocking {
		return nil
	}
	frame, err := e.cfg.Port.Recv(timeout)
	if err != nil {
		return err
	}
	e.pendingFrames = append(e.pendingFrames, frame)
	return nil
}

// Close unbinds the socket.
func (e *endpoint) Close() error {
	e.closed.Store(true)
	return nil
}
