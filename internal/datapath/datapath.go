// Package datapath defines the plugin interface (SPI) between the INSANE
// runtime and the technology-specific datapaths (§5.3: "each plugin, one
// per available network acceleration technique, must define a send and a
// receive operation").
//
// A plugin turns opaque middleware messages into technology frames on a
// fabric port and back. Plugins for technologies that need a userspace
// network stack (DPDK, XDP) exchange *framed* packets — the runtime's
// packet processing engine builds/parses the Ethernet/IPv4/UDP headers —
// while kernel UDP and RDMA plugins accept bare messages because the
// kernel or the NIC implements the protocols.
//
// Every packet carries a virtual timestamp and a Fig. 6-style breakdown;
// plugins charge their calibrated model costs as the packet crosses them
// (see internal/model).
package datapath

import (
	"errors"
	"time"

	"github.com/insane-mw/insane/internal/fabric"
	"github.com/insane-mw/insane/internal/mempool"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/netstack"
	"github.com/insane-mw/insane/internal/timebase"
)

// Headroom is the slot space reserved in front of every message so that
// framing plugins can prepend protocol headers without copying, exactly
// like mbuf headroom in DPDK.
const Headroom = netstack.HeadersLen

// Errors shared by plugin implementations.
var (
	// ErrClosed is returned by operations on a closed endpoint.
	ErrClosed = errors.New("datapath: endpoint closed")
	// ErrUnavailable is returned when a technology is not present on the
	// host (the QoS mapper then falls back, §5.2).
	ErrUnavailable = errors.New("datapath: technology unavailable on this host")
	// ErrTooLarge is returned when a message exceeds the path MTU; INSANE
	// does not fragment (§8: end-to-end zero copy), callers must use
	// jumbo-frame slots or application-level fragmentation.
	ErrTooLarge = errors.New("datapath: message exceeds MTU")
)

// Packet is the unit exchanged between the runtime and a plugin.
type Packet struct {
	// Slot backs Buf when the packet's memory comes from the runtime
	// memory manager (NoSlot for transient buffers).
	Slot mempool.SlotID
	// Buf is the full backing buffer; the message occupies
	// Buf[Off : Off+Len].
	Buf []byte
	Off int
	Len int
	// Framed marks that Buf[Off:Off+Len] is a complete Ethernet frame
	// (produced or consumed by the packet processing engine).
	Framed bool
	// Src and Dst address the flow at UDP granularity.
	Src, Dst netstack.Endpoint
	// Class is the traffic class (0-7) used by the TSN scheduler's gate
	// control list; 0 is best effort.
	Class uint8
	// Tenant is the emitting tenant's index in the runtime's tenant
	// table (0 = the default tenant); the weighted deficit round-robin
	// scheduler uses it to pick the tenant queue. Like Class it is pure
	// scheduling metadata — plugins must not touch it.
	Tenant uint16
	// VTime is the accumulated virtual timestamp of the packet.
	VTime timebase.VTime
	// Breakdown accounts the virtual time by Fig. 6 stage.
	Breakdown fabric.Breakdown
	// Ctx is an opaque caller context that rides along the packet
	// through schedulers and queues (like mbuf user metadata); plugins
	// must not touch it.
	Ctx any
}

// Bytes returns the message (or frame) view of the packet.
func (p *Packet) Bytes() []byte { return p.Buf[p.Off : p.Off+p.Len] }

// Charge adds a model component's latency cost to the packet's virtual
// clock and breakdown, amortizing burstable work over burst packets.
func (p *Packet) Charge(c model.Component, payload, burst int, tb model.Testbed) {
	occ := c.Occupancy(payload, burst, tb)
	wait := tb.Scale(c.Class, c.LatencyOnly)
	if c.OccupancyOnly {
		// Off the latency critical path: no virtual time charge.
		return
	}
	d := occ + wait
	p.VTime = p.VTime.Add(d)
	switch c.Category {
	case model.CatSend:
		p.Breakdown.Send += d
	case model.CatNetwork:
		p.Breakdown.Network += d
	case model.CatRecv:
		p.Breakdown.Recv += d
	case model.CatProcessing:
		p.Breakdown.Processing += d
	}
}

// Allocator hands out memory-manager slots to receiving plugins (the
// stand-in for NIC DMA into the registered memory pools).
type Allocator func(size int) (mempool.SlotID, []byte, error)

// Config configures one endpoint.
type Config struct {
	// Port is the fabric NIC port the endpoint drives.
	Port *fabric.Port
	// Resolver maps destination IPs to MACs (static ARP).
	Resolver *netstack.Resolver
	// Local is the endpoint's own UDP address for demultiplexing.
	Local netstack.Endpoint
	// Alloc provides receive buffers from the runtime memory manager.
	Alloc Allocator
	// Testbed selects the cost scaling environment.
	Testbed model.Testbed
	// Burst caps how many packets one Send/Poll call moves. Zero means
	// model.DefaultBurst.
	Burst int
	// Blocking selects blocking receive semantics where the technology
	// offers them (kernel UDP); busy-polling plugins ignore it.
	Blocking bool
}

// EffectiveBurst returns the configured burst, defaulted.
func (c Config) EffectiveBurst() int {
	if c.Burst <= 0 {
		return model.DefaultBurst
	}
	return c.Burst
}

// Stats counts endpoint activity.
type Stats struct {
	TxPackets, RxPackets uint64
	TxBytes, RxBytes     uint64
	Drops                uint64 // demux misses, allocation failures
	EmptyPolls           uint64 // busy-poll iterations that found nothing
}

// Endpoint is an open datapath attachment.
type Endpoint interface {
	// Tech identifies the plugin technology.
	Tech() model.Tech
	// Send transmits a burst of packets to dst. It returns the number of
	// packets accepted; the caller retains ownership of rejected ones.
	// Plugins are trusted hot-path boundaries: each implementation is
	// vetted (or deliberately exempt) where it is defined.
	//
	//insane:hotpath
	Send(pkts []*Packet, dst netstack.Endpoint) (int, error)
	// Poll receives up to max packets without blocking.
	//
	//insane:hotpath
	Poll(max int) ([]*Packet, error)
	// WaitRecv blocks until at least one packet is available or the
	// timeout elapses; busy-polling technologies return immediately.
	WaitRecv(timeout time.Duration) error
	// MTU returns the maximum message size the endpoint accepts.
	MTU() int
	// Stats returns a snapshot of endpoint counters.
	Stats() Stats
	// Close releases the endpoint.
	Close() error
}

// Plugin creates endpoints for one technology.
type Plugin interface {
	// Tech identifies the technology.
	Tech() model.Tech
	// Info returns the Table 1 capability record.
	Info() model.TechInfo
	// Available reports whether the host offers this technology.
	Available(caps Caps) bool
	// Open creates an endpoint.
	Open(cfg Config) (Endpoint, error)
}

// Caps describes what a host's hardware/OS offers. Kernel networking is
// always present; the others model the heterogeneity of edge nodes (§1).
type Caps struct {
	DPDK bool
	XDP  bool
	RDMA bool
}

// Has reports whether the capability set includes a technology.
func (c Caps) Has(t model.Tech) bool {
	switch t {
	case model.TechKernelUDP:
		return true
	case model.TechDPDK:
		return c.DPDK
	case model.TechXDP:
		return c.XDP
	case model.TechRDMA:
		return c.RDMA
	default:
		return false
	}
}

// List returns the available technologies in Table 1 order.
func (c Caps) List() []model.Tech {
	out := []model.Tech{model.TechKernelUDP}
	if c.XDP {
		out = append(out, model.TechXDP)
	}
	if c.DPDK {
		out = append(out, model.TechDPDK)
	}
	if c.RDMA {
		out = append(out, model.TechRDMA)
	}
	return out
}
