package datapath

import (
	"testing"
	"time"

	"github.com/insane-mw/insane/internal/model"
)

func TestPacketBytes(t *testing.T) {
	buf := []byte{0, 1, 2, 3, 4, 5, 6, 7}
	p := &Packet{Buf: buf, Off: 2, Len: 3}
	got := p.Bytes()
	if len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Errorf("Bytes = %v", got)
	}
}

func TestChargeCategories(t *testing.T) {
	mk := func(cat model.Category) model.Component {
		return model.Component{Name: "c", Category: cat, Fixed: 100}
	}
	p := &Packet{}
	p.Charge(mk(model.CatSend), 0, 1, model.Local)
	p.Charge(mk(model.CatNetwork), 0, 1, model.Local)
	p.Charge(mk(model.CatRecv), 0, 1, model.Local)
	p.Charge(mk(model.CatProcessing), 0, 1, model.Local)
	if p.VTime.Duration() != 400 {
		t.Errorf("vtime = %v, want 400ns", p.VTime)
	}
	bd := p.Breakdown
	if bd.Send != 100 || bd.Network != 100 || bd.Recv != 100 || bd.Processing != 100 {
		t.Errorf("breakdown = %+v", bd)
	}
	if bd.Total() != p.VTime.Duration() {
		t.Error("breakdown does not sum to vtime")
	}
}

func TestChargeAmortization(t *testing.T) {
	c := model.Component{Name: "a", Category: model.CatSend, Fixed: 100, Amort: 320}
	single := &Packet{}
	single.Charge(c, 0, 1, model.Local)
	burst := &Packet{}
	burst.Charge(c, 0, 32, model.Local)
	if single.VTime.Duration() != 420 {
		t.Errorf("single charge = %v, want 420ns", single.VTime)
	}
	if burst.VTime.Duration() != 110 {
		t.Errorf("burst charge = %v, want 110ns", burst.VTime)
	}
}

func TestChargeOccupancyOnlySkipsLatency(t *testing.T) {
	c := model.Component{Name: "reap", Category: model.CatSend, Amort: 400, OccupancyOnly: true}
	p := &Packet{}
	p.Charge(c, 0, 1, model.Local)
	if p.VTime != 0 || p.Breakdown.Total() != 0 {
		t.Error("occupancy-only work charged to the latency clock")
	}
}

func TestChargeLatencyOnlyWaits(t *testing.T) {
	c := model.Component{Name: "wait", Category: model.CatRecv, Class: model.ScaleKernel, LatencyOnly: 1000}
	p := &Packet{}
	p.Charge(c, 0, 32, model.Cloud) // burst must not amortize waits
	want := time.Duration(1600)     // 1000 × 1.6 kernel scale
	if p.VTime.Duration() != want {
		t.Errorf("wait charge = %v, want %v", p.VTime, want)
	}
}

func TestConfigEffectiveBurst(t *testing.T) {
	if (Config{}).EffectiveBurst() != model.DefaultBurst {
		t.Error("default burst wrong")
	}
	if (Config{Burst: 4}).EffectiveBurst() != 4 {
		t.Error("explicit burst ignored")
	}
}

func TestCapsListOrder(t *testing.T) {
	caps := Caps{DPDK: true, XDP: true, RDMA: true}
	list := caps.List()
	want := []model.Tech{model.TechKernelUDP, model.TechXDP, model.TechDPDK, model.TechRDMA}
	if len(list) != len(want) {
		t.Fatalf("list = %v", list)
	}
	for i := range want {
		if list[i] != want[i] {
			t.Errorf("list[%d] = %v, want %v", i, list[i], want[i])
		}
	}
	if (Caps{}).Has(model.Tech(99)) {
		t.Error("unknown tech reported available")
	}
}
