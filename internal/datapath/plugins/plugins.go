// Package plugins wires up the built-in datapath plugin set, giving the
// runtime (and tests) a single place to look up plugins by technology.
package plugins

import (
	"fmt"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/datapath/dpdk"
	"github.com/insane-mw/insane/internal/datapath/kernel"
	"github.com/insane-mw/insane/internal/datapath/rdma"
	"github.com/insane-mw/insane/internal/datapath/xdp"
	"github.com/insane-mw/insane/internal/model"
)

// All returns the built-in plugins in Table 1 order.
func All() []datapath.Plugin {
	return []datapath.Plugin{
		kernel.Plugin{},
		xdp.Plugin{},
		dpdk.Plugin{},
		rdma.Plugin{},
	}
}

// ByTech returns the plugin implementing the given technology.
func ByTech(t model.Tech) (datapath.Plugin, error) {
	for _, p := range All() {
		if p.Tech() == t {
			return p, nil
		}
	}
	return nil, fmt.Errorf("plugins: no plugin for %v", t)
}

// Available returns the plugins usable under the host capabilities,
// kernel first.
func Available(caps datapath.Caps) []datapath.Plugin {
	var out []datapath.Plugin
	for _, p := range All() {
		if p.Available(caps) {
			out = append(out, p)
		}
	}
	return out
}
