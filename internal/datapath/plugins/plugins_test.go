// Package plugins_test exercises every datapath plugin end to end over the
// virtual fabric: two hosts, one endpoint each, messages flowing both ways
// with correct payloads, demultiplexing, cost accounting and statistics.
package plugins_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/datapath/plugins"
	"github.com/insane-mw/insane/internal/datapath/rdma"
	"github.com/insane-mw/insane/internal/fabric"
	"github.com/insane-mw/insane/internal/mempool"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/netstack"
)

// rig is a two-host test fixture with one open endpoint per side.
type rig struct {
	mmA, mmB *mempool.Manager
	a, b     datapath.Endpoint
	epA, epB netstack.Endpoint
}

func newRig(t *testing.T, tech model.Tech, blocking bool) *rig {
	t.Helper()
	net := fabric.New(7)
	ipA, ipB := netstack.IPv4{10, 0, 0, 1}, netstack.IPv4{10, 0, 0, 2}
	portA, err := net.AddHost("a", ipA)
	if err != nil {
		t.Fatal(err)
	}
	portB, err := net.AddHost("b", ipB)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.ConnectDirect(portA, portB, fabric.DefaultLink); err != nil {
		t.Fatal(err)
	}
	mmA, err := mempool.NewManager(mempool.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mmB, err := mempool.NewManager(mempool.Config{})
	if err != nil {
		t.Fatal(err)
	}
	plugin, err := plugins.ByTech(tech)
	if err != nil {
		t.Fatal(err)
	}
	epA := netstack.Endpoint{IP: ipA, Port: 7000}
	epB := netstack.Endpoint{IP: ipB, Port: 7000}
	open := func(port *fabric.Port, mm *mempool.Manager, local netstack.Endpoint) datapath.Endpoint {
		ep, err := plugin.Open(datapath.Config{
			Port:     port,
			Resolver: net.Resolver(),
			Local:    local,
			Alloc: func(size int) (mempool.SlotID, []byte, error) {
				return mm.Get(size, mempool.NoOwner)
			},
			Testbed:  model.Local,
			Blocking: blocking,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ep
	}
	r := &rig{
		mmA: mmA, mmB: mmB,
		a: open(portA, mmA, epA), b: open(portB, mmB, epB),
		epA: epA, epB: epB,
	}
	t.Cleanup(func() { r.a.Close(); r.b.Close() })
	return r
}

// makePacket builds an unframed message packet in a fresh buffer.
func makePacket(payload []byte) *datapath.Packet {
	buf := make([]byte, datapath.Headroom+len(payload))
	copy(buf[datapath.Headroom:], payload)
	return &datapath.Packet{
		Buf: buf, Off: datapath.Headroom, Len: len(payload),
	}
}

// frame builds a framed packet for the DPDK/XDP paths, emulating the
// runtime's packet processing engine.
func frame(t *testing.T, payload []byte, src, dst netstack.Endpoint, srcMAC, dstMAC netstack.MAC) *datapath.Packet {
	t.Helper()
	buf := make([]byte, netstack.HeadersLen+len(payload))
	copy(buf[netstack.HeadersLen:], payload)
	n, err := netstack.EncodeUDP(buf, netstack.FrameMeta{
		SrcMAC: srcMAC, DstMAC: dstMAC, Src: src, Dst: dst,
	}, len(payload), netstack.JumboMTU)
	if err != nil {
		t.Fatal(err)
	}
	return &datapath.Packet{Buf: buf, Off: 0, Len: n, Framed: true}
}

// pollOne spins until the endpoint returns one packet or times out.
func pollOne(t *testing.T, ep datapath.Endpoint) *datapath.Packet {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		pkts, err := ep.Poll(8)
		if err != nil {
			t.Fatal(err)
		}
		if len(pkts) > 0 {
			return pkts[0]
		}
	}
	t.Fatal("no packet received before deadline")
	return nil
}

func TestKernelRoundTrip(t *testing.T) {
	r := newRig(t, model.TechKernelUDP, false)
	msg := []byte("kernel path message")
	if n, err := r.a.Send([]*datapath.Packet{makePacket(msg)}, r.epB); err != nil || n != 1 {
		t.Fatalf("Send = %d,%v", n, err)
	}
	got := pollOne(t, r.b)
	if !bytes.Equal(got.Bytes(), msg) {
		t.Errorf("payload = %q, want %q", got.Bytes(), msg)
	}
	if got.Src != r.epA || got.Dst != r.epB {
		t.Errorf("addressing = %v→%v, want %v→%v", got.Src, got.Dst, r.epA, r.epB)
	}
	// Kernel path must charge µs-scale one-way latency (≈6.3 µs at 64B).
	oneWay := got.VTime.Duration()
	if oneWay < 5*time.Microsecond || oneWay > 8*time.Microsecond {
		t.Errorf("kernel one-way vtime = %v, want ≈6.3µs", oneWay)
	}
	if got.Breakdown.Total() != oneWay {
		t.Errorf("breakdown total %v != vtime %v", got.Breakdown.Total(), oneWay)
	}
}

func TestKernelBlockingChargesWakeup(t *testing.T) {
	nb := newRig(t, model.TechKernelUDP, false)
	bl := newRig(t, model.TechKernelUDP, true)
	msg := []byte{1, 2, 3, 4}
	if _, err := nb.a.Send([]*datapath.Packet{makePacket(msg)}, nb.epB); err != nil {
		t.Fatal(err)
	}
	if _, err := bl.a.Send([]*datapath.Packet{makePacket(msg)}, bl.epB); err != nil {
		t.Fatal(err)
	}
	if err := bl.b.WaitRecv(time.Second); err != nil {
		t.Fatal(err)
	}
	fast := pollOne(t, nb.b).VTime
	slow := pollOne(t, bl.b).VTime
	if delta := slow.Sub(fast); delta != model.BlockingWakeup() {
		t.Errorf("blocking wakeup delta = %v, want %v", delta, model.BlockingWakeup())
	}
}

func TestKernelRejectsOversizedAndFramed(t *testing.T) {
	r := newRig(t, model.TechKernelUDP, false)
	big := makePacket(make([]byte, r.a.MTU()+1))
	big.Buf = make([]byte, datapath.Headroom+r.a.MTU()+1)
	if _, err := r.a.Send([]*datapath.Packet{big}, r.epB); !errors.Is(err, datapath.ErrTooLarge) {
		t.Errorf("oversize err = %v, want ErrTooLarge", err)
	}
	fp := makePacket([]byte("x"))
	fp.Framed = true
	if _, err := r.a.Send([]*datapath.Packet{fp}, r.epB); err == nil {
		t.Error("framed packet accepted on kernel path")
	}
}

func TestDPDKRoundTripFramed(t *testing.T) {
	r := newRig(t, model.TechDPDK, false)
	msg := []byte("dpdk burst message")
	// Discover MACs through a resolver-independent route: send via the
	// plugin requires pre-framed packets, built as the engine would.
	f := frameFor(t, r, msg)
	if n, err := r.a.Send([]*datapath.Packet{f}, r.epB); err != nil || n != 1 {
		t.Fatalf("Send = %d,%v", n, err)
	}
	got := pollOne(t, r.b)
	if !got.Framed {
		t.Fatal("DPDK must deliver framed packets")
	}
	meta, payload, err := netstack.DecodeUDP(got.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, msg) {
		t.Errorf("payload = %q, want %q", payload, msg)
	}
	if meta.Src != r.epA || meta.Dst != r.epB {
		t.Errorf("addressing = %v→%v", meta.Src, meta.Dst)
	}
	// DPDK one-way ≈ 1.2-1.5 µs for the plugin-charged parts (no runtime).
	oneWay := got.VTime.Duration()
	if oneWay < 800*time.Nanosecond || oneWay > 2500*time.Nanosecond {
		t.Errorf("dpdk one-way vtime = %v, want ≈1.7µs", oneWay)
	}
	if r.b.Stats().RxPackets != 1 || r.a.Stats().TxPackets != 1 {
		t.Error("stats not counted")
	}
}

// frameFor builds a frame from rig A to rig B using the fabric MACs the
// resolver knows.
func frameFor(t *testing.T, r *rig, payload []byte) *datapath.Packet {
	t.Helper()
	// The rig's resolver is inside the endpoints; rebuild MACs from the
	// deterministic fabric numbering (host 1 = :01, host 2 = :02).
	srcMAC := netstack.MAC{0x02, 0, 0, 0, 0, 1}
	dstMAC := netstack.MAC{0x02, 0, 0, 0, 0, 2}
	return frame(t, payload, r.epA, r.epB, srcMAC, dstMAC)
}

func TestDPDKRejectsUnframed(t *testing.T) {
	r := newRig(t, model.TechDPDK, false)
	if _, err := r.a.Send([]*datapath.Packet{makePacket([]byte("x"))}, r.epB); err == nil {
		t.Error("unframed packet accepted on DPDK path")
	}
}

func TestDPDKBurstAmortizesDoorbell(t *testing.T) {
	single := newRig(t, model.TechDPDK, false)
	burst := newRig(t, model.TechDPDK, false)
	msg := make([]byte, 64)

	if _, err := single.a.Send([]*datapath.Packet{frameFor(t, single, msg)}, single.epB); err != nil {
		t.Fatal(err)
	}
	soloVT := pollOne(t, single.b).VTime

	pkts := make([]*datapath.Packet, 16)
	for i := range pkts {
		pkts[i] = frameFor(t, burst, msg)
	}
	if n, err := burst.a.Send(pkts, burst.epB); err != nil || n != 16 {
		t.Fatalf("burst send = %d,%v", n, err)
	}
	// Drain the whole burst; per-packet charged time must be lower than
	// the single-packet case thanks to doorbell amortization.
	var got []*datapath.Packet
	deadline := time.Now().Add(2 * time.Second)
	for len(got) < 16 && time.Now().Before(deadline) {
		ps, err := burst.b.Poll(16)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ps...)
	}
	if len(got) != 16 {
		t.Fatalf("received %d of 16", len(got))
	}
	if got[0].VTime >= soloVT {
		t.Errorf("burst packet vtime %v not below single-packet %v", got[0].VTime, soloVT)
	}
}

func TestXDPRoundTrip(t *testing.T) {
	r := newRig(t, model.TechXDP, false)
	msg := []byte("xdp umem message")
	if _, err := r.a.Send([]*datapath.Packet{frameFor(t, r, msg)}, r.epB); err != nil {
		t.Fatal(err)
	}
	got := pollOne(t, r.b)
	_, payload, err := netstack.DecodeUDP(got.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, msg) {
		t.Errorf("payload = %q, want %q", payload, msg)
	}
	// XDP sits between DPDK (~1.7µs) and kernel (~6.3µs) one-way.
	oneWay := got.VTime.Duration()
	if oneWay < 1700*time.Nanosecond || oneWay > 5*time.Microsecond {
		t.Errorf("xdp one-way vtime = %v, want between DPDK and kernel", oneWay)
	}
}

func TestRDMARoundTrip(t *testing.T) {
	r := newRig(t, model.TechRDMA, false)
	msg := []byte("rdma two-sided send")
	if _, err := r.a.Send([]*datapath.Packet{makePacket(msg)}, r.epB); err != nil {
		t.Fatal(err)
	}
	got := pollOne(t, r.b)
	if !bytes.Equal(got.Bytes(), msg) {
		t.Errorf("payload = %q, want %q", got.Bytes(), msg)
	}
	// RDMA one-way ≈ 1.46 µs: fastest of all technologies.
	oneWay := got.VTime.Duration()
	if oneWay < 1200*time.Nanosecond || oneWay > 1800*time.Nanosecond {
		t.Errorf("rdma one-way vtime = %v, want ≈1.46µs", oneWay)
	}
}

func TestRDMARejectsFramed(t *testing.T) {
	r := newRig(t, model.TechRDMA, false)
	f := frameFor(t, r, []byte("x"))
	if _, err := r.a.Send([]*datapath.Packet{f}, r.epB); err == nil {
		t.Error("framed packet accepted on RDMA path")
	}
}

// TestRDMAReceiverNotReady drops messages beyond the posted receive depth
// within one completion poll.
func TestRDMAReceiverNotReady(t *testing.T) {
	net := fabric.New(7)
	ipA, ipB := netstack.IPv4{10, 0, 0, 1}, netstack.IPv4{10, 0, 0, 2}
	portA, _ := net.AddHost("a", ipA)
	portB, _ := net.AddHost("b", ipB)
	if err := net.ConnectDirect(portA, portB, fabric.DefaultLink); err != nil {
		t.Fatal(err)
	}
	mm, _ := mempool.NewManager(mempool.Config{})
	alloc := func(size int) (mempool.SlotID, []byte, error) { return mm.Get(size, mempool.NoOwner) }
	plugin := rdma.Plugin{RecvDepth: 4}
	a, err := plugin.Open(datapath.Config{
		Port: portA, Resolver: net.Resolver(),
		Local: netstack.Endpoint{IP: ipA, Port: 9}, Alloc: alloc, Testbed: model.Local,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := plugin.Open(datapath.Config{
		Port: portB, Resolver: net.Resolver(),
		Local: netstack.Endpoint{IP: ipB, Port: 9}, Alloc: alloc, Testbed: model.Local,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := a.Send([]*datapath.Packet{makePacket([]byte{byte(i)})}, netstack.Endpoint{IP: ipB, Port: 9}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	pkts, err := b.Poll(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 4 {
		t.Fatalf("reaped %d completions, want 4 (depth)", len(pkts))
	}
	rn := b.(interface{ RNRDrops() uint64 }).RNRDrops()
	if rn != 6 {
		t.Errorf("RNR drops = %d, want 6", rn)
	}
}

func TestClosedEndpointErrors(t *testing.T) {
	for _, tech := range []model.Tech{model.TechKernelUDP, model.TechDPDK, model.TechXDP, model.TechRDMA} {
		t.Run(tech.String(), func(t *testing.T) {
			r := newRig(t, tech, false)
			if err := r.a.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := r.a.Send(nil, r.epB); !errors.Is(err, datapath.ErrClosed) {
				t.Errorf("Send on closed = %v", err)
			}
			if _, err := r.a.Poll(1); !errors.Is(err, datapath.ErrClosed) {
				t.Errorf("Poll on closed = %v", err)
			}
			if err := r.a.WaitRecv(time.Millisecond); !errors.Is(err, datapath.ErrClosed) {
				t.Errorf("WaitRecv on closed = %v", err)
			}
		})
	}
}

func TestDemuxDropsForeignPort(t *testing.T) {
	r := newRig(t, model.TechKernelUDP, false)
	wrongDst := netstack.Endpoint{IP: r.epB.IP, Port: 9999}
	if _, err := r.a.Send([]*datapath.Packet{makePacket([]byte("x"))}, wrongDst); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	pkts, err := r.b.Poll(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 0 {
		t.Errorf("received %d packets for a foreign port", len(pkts))
	}
	if r.b.Stats().Drops == 0 {
		t.Error("demux miss not counted as drop")
	}
}

func TestRegistry(t *testing.T) {
	if got := len(plugins.All()); got != 4 {
		t.Fatalf("All() = %d plugins, want 4", got)
	}
	if _, err := plugins.ByTech(model.Tech(99)); err == nil {
		t.Error("ByTech(unknown): want error")
	}
	caps := datapath.Caps{DPDK: true}
	avail := plugins.Available(caps)
	if len(avail) != 2 {
		t.Fatalf("Available = %d plugins, want 2 (kernel+dpdk)", len(avail))
	}
	if avail[0].Tech() != model.TechKernelUDP || avail[1].Tech() != model.TechDPDK {
		t.Errorf("Available order/content wrong: %v, %v", avail[0].Tech(), avail[1].Tech())
	}
	// Caps helpers.
	if !caps.Has(model.TechKernelUDP) || !caps.Has(model.TechDPDK) || caps.Has(model.TechRDMA) {
		t.Error("Caps.Has wrong")
	}
	full := datapath.Caps{DPDK: true, XDP: true, RDMA: true}
	if got := len(full.List()); got != 4 {
		t.Errorf("full caps list = %d, want 4", got)
	}
	for _, p := range plugins.All() {
		if p.Info().Tech != p.Tech() {
			t.Errorf("%v: Info().Tech mismatch", p.Tech())
		}
	}
}

func TestTechLatencyOrderingEndToEnd(t *testing.T) {
	oneWay := func(tech model.Tech) time.Duration {
		r := newRig(t, tech, false)
		var pkt *datapath.Packet
		if tech == model.TechDPDK || tech == model.TechXDP {
			pkt = frameFor(t, r, make([]byte, 64))
		} else {
			pkt = makePacket(make([]byte, 64))
		}
		if _, err := r.a.Send([]*datapath.Packet{pkt}, r.epB); err != nil {
			t.Fatal(err)
		}
		return pollOne(t, r.b).VTime.Duration()
	}
	rdmaT := oneWay(model.TechRDMA)
	dpdkT := oneWay(model.TechDPDK)
	xdpT := oneWay(model.TechXDP)
	kernT := oneWay(model.TechKernelUDP)
	if !(rdmaT < dpdkT && dpdkT < xdpT && xdpT < kernT) {
		t.Errorf("ordering: rdma=%v dpdk=%v xdp=%v kernel=%v", rdmaT, dpdkT, xdpT, kernT)
	}
}

// TestXDPBlockingWaitRecv exercises AF_XDP's poll(2)-style blocking wait:
// the frame consumed during the wait must surface in the next Poll.
func TestXDPBlockingWaitRecv(t *testing.T) {
	r := newRig(t, model.TechXDP, true)
	msg := []byte("xdp blocking")
	if _, err := r.a.Send([]*datapath.Packet{frameFor(t, r, msg)}, r.epB); err != nil {
		t.Fatal(err)
	}
	if err := r.b.WaitRecv(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	pkts, err := r.b.Poll(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 {
		t.Fatalf("polled %d packets after blocking wait, want 1", len(pkts))
	}
	_, payload, err := netstack.DecodeUDP(pkts[0].Bytes())
	if err != nil || !bytes.Equal(payload, msg) {
		t.Errorf("payload = %q, %v", payload, err)
	}
}

// TestNonBlockingWaitRecvIsNoop: with Blocking unset, WaitRecv must not
// consume anything.
func TestNonBlockingWaitRecvIsNoop(t *testing.T) {
	r := newRig(t, model.TechKernelUDP, false)
	if _, err := r.a.Send([]*datapath.Packet{makePacket([]byte("x"))}, r.epB); err != nil {
		t.Fatal(err)
	}
	if err := r.b.WaitRecv(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := pollOne(t, r.b); string(got.Bytes()) != "x" {
		t.Errorf("payload = %q", got.Bytes())
	}
}

// TestSendToUnresolvableIP: destinations outside the static ARP table
// must fail cleanly on address-carrying plugins.
func TestSendToUnresolvableIP(t *testing.T) {
	for _, tech := range []model.Tech{model.TechKernelUDP, model.TechRDMA} {
		t.Run(tech.String(), func(t *testing.T) {
			r := newRig(t, tech, false)
			ghost := netstack.Endpoint{IP: netstack.IPv4{203, 0, 113, 9}, Port: 1}
			if _, err := r.a.Send([]*datapath.Packet{makePacket([]byte("x"))}, ghost); err == nil {
				t.Error("send to unresolvable IP succeeded")
			}
		})
	}
}
