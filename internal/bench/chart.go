package bench

import (
	"fmt"
	"strings"
)

// Chart renders a horizontal ASCII bar chart, so the regenerated figures
// read like figures in a terminal.
type Chart struct {
	Title string
	Unit  string
	// Width is the maximum bar width in characters (default 50).
	Width  int
	labels []string
	values []float64
}

// Add appends one bar.
func (c *Chart) Add(label string, value float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
}

// String renders the chart with bars scaled to the maximum value.
func (c *Chart) String() string {
	if len(c.values) == 0 {
		return ""
	}
	width := c.Width
	if width <= 0 {
		width = 50
	}
	maxVal := c.values[0]
	labelW := len(c.labels[0])
	for i := range c.values {
		if c.values[i] > maxVal {
			maxVal = c.values[i]
		}
		if len(c.labels[i]) > labelW {
			labelW = len(c.labels[i])
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "## %s\n", c.Title)
	}
	for i := range c.values {
		bars := 0
		if maxVal > 0 {
			bars = int(c.values[i] / maxVal * float64(width))
		}
		if bars == 0 && c.values[i] > 0 {
			bars = 1
		}
		fmt.Fprintf(&b, "%-*s  %s %.2f %s\n",
			labelW, c.labels[i], strings.Repeat("#", bars), c.values[i], c.Unit)
	}
	return b.String()
}
