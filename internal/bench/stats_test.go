package bench

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeBasics(t *testing.T) {
	samples := []time.Duration{5, 1, 3, 2, 4}
	s := Summarize(samples)
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.P25 != 2 || s.P75 != 4 {
		t.Errorf("quartiles = %v/%v, want 2/4", s.P25, s.P75)
	}
	// Input must not be reordered.
	if samples[0] != 5 {
		t.Error("Summarize mutated its input")
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty summary not zero")
	}
	s := Summarize([]time.Duration{7})
	if s.Median != 7 || s.P25 != 7 || s.P99 != 7 || s.StdDev != 0 {
		t.Errorf("single-sample summary = %+v", s)
	}
}

func TestSummarizeInterpolation(t *testing.T) {
	s := Summarize([]time.Duration{0, 10})
	if s.Median != 5 {
		t.Errorf("median of {0,10} = %v, want 5", s.Median)
	}
}

func TestQuickSummaryInvariants(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v)
		}
		s := Summarize(samples)
		return s.Min <= s.P25 && s.P25 <= s.Median &&
			s.Median <= s.P75 && s.P75 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.N == len(samples)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStdDev(t *testing.T) {
	s := Summarize([]time.Duration{2, 4, 4, 4, 5, 5, 7, 9})
	// Sample stddev of this classic set ≈ 2.138.
	if s.StdDev < 2 || s.StdDev > 3 {
		t.Errorf("stddev = %v", s.StdDev)
	}
}

func TestMicros(t *testing.T) {
	if got := Micros(4950 * time.Nanosecond); got != "4.95" {
		t.Errorf("Micros = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "Demo", Header: []string{"sys", "rtt"}}
	tb.AddRow("raw", "3.44")
	tb.AddRow("insane fast", "4.95")
	out := tb.String()
	if !strings.Contains(out, "## Demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Alignment: all data rows at least as wide as the widest cell.
	if !strings.HasPrefix(lines[3], "raw ") {
		t.Errorf("row not padded: %q", lines[3])
	}
}

func TestChartRendering(t *testing.T) {
	c := Chart{Title: "RTT", Unit: "µs", Width: 20}
	c.Add("raw", 3.44)
	c.Add("insane fast", 4.95)
	c.Add("kernel", 12.58)
	out := c.String()
	if !strings.Contains(out, "## RTT") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The largest value gets the full width; smaller ones proportionally
	// fewer bars.
	if !strings.Contains(lines[3], strings.Repeat("#", 20)) {
		t.Errorf("max bar not full width: %q", lines[3])
	}
	rawBars := strings.Count(lines[1], "#")
	if rawBars < 4 || rawBars > 7 {
		t.Errorf("raw bar = %d chars, want ≈5 (3.44/12.58 of 20)", rawBars)
	}
	// Zero and tiny values.
	z := Chart{}
	z.Add("zero", 0)
	z.Add("tiny", 0.0001)
	z.Add("big", 100)
	zl := strings.Split(strings.TrimSpace(z.String()), "\n")
	if strings.Count(zl[0], "#") != 0 {
		t.Error("zero value drew a bar")
	}
	if strings.Count(zl[1], "#") != 1 {
		t.Error("tiny positive value must draw one bar")
	}
	var empty Chart
	if empty.String() != "" {
		t.Error("empty chart not empty")
	}
}
