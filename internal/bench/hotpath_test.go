package bench

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Old-schema files (pre env/throughput) must keep parsing: the compare
// gate runs against committed baselines from earlier revisions.
func TestReadHotpathJSONBackwardCompatible(t *testing.T) {
	old := `{
  "note": "legacy baseline",
  "results": [
    {"name": "emit-consume-local/64B", "iters": 20000, "ns_per_op": 2827.2, "allocs_per_op": 0.00045, "bytes_per_op": 0.04}
  ]
}`
	path := filepath.Join(t.TempDir(), "old.json")
	if err := os.WriteFile(path, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := ReadHotpathJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Env != nil {
		t.Errorf("legacy baseline Env = %+v, want nil", b.Env)
	}
	if len(b.Throughput) != 0 {
		t.Errorf("legacy baseline Throughput = %v, want empty", b.Throughput)
	}
	if len(b.Results) != 1 || b.Results[0].NsPerOp != 2827.2 {
		t.Errorf("legacy results = %+v", b.Results)
	}
}

func TestWriteHotpathJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "new.json")
	results := []HotpathResult{{Name: "x", Iters: 10, NsPerOp: 100}}
	tp := []ThroughputResult{{Name: "t", Pollers: 2, Streams: 4, Packets: 8, Elapsed: 1, PacketsPerSec: 8}}
	if err := WriteHotpathJSON(path, results, tp); err != nil {
		t.Fatal(err)
	}
	b, err := ReadHotpathJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Env == nil || b.Env.NumCPU <= 0 || b.Env.GoVersion == "" {
		t.Errorf("round-trip Env = %+v, want populated", b.Env)
	}
	if len(b.Throughput) != 1 || b.Throughput[0].Pollers != 2 {
		t.Errorf("round-trip Throughput = %+v", b.Throughput)
	}
}

func TestReadHotpathJSONErrors(t *testing.T) {
	if _, err := ReadHotpathJSON(filepath.Join(t.TempDir(), "absent.json")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file error = %v, want not-exist", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHotpathJSON(bad); err == nil {
		t.Error("malformed baseline parsed without error")
	}
}

func TestCompareHotpath(t *testing.T) {
	baseline := HotpathBaseline{Results: []HotpathResult{
		{Name: "fast", NsPerOp: 1000, AllocsPerOp: 0},
		{Name: "slow", NsPerOp: 2000, AllocsPerOp: 0},
		{Name: "gone", NsPerOp: 500, AllocsPerOp: 0},
	}}
	fresh := []HotpathResult{
		{Name: "fast", NsPerOp: 1050, AllocsPerOp: 0},   // within +10%
		{Name: "slow", NsPerOp: 2500, AllocsPerOp: 0},   // +25%: regression
		{Name: "brand-new", NsPerOp: 1, AllocsPerOp: 0}, // informational
	}
	report, failed := CompareHotpath(baseline, fresh, 0.10)
	if !failed {
		t.Fatalf("expected failure, report:\n%s", report)
	}
	for _, want := range []string{"ok    fast", "FAIL  slow", "NEW   brand-new", "MISS  gone"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	// Any allocs/op rise fails even inside the ns tolerance.
	_, failed = CompareHotpath(baseline, []HotpathResult{
		{Name: "fast", NsPerOp: 900, AllocsPerOp: 0.001},
	}, 0.10)
	if !failed {
		t.Error("allocs/op rise not flagged")
	}

	// Identical results pass.
	_, failed = CompareHotpath(baseline, baseline.Results, 0.10)
	if failed {
		t.Error("identical results flagged as regression")
	}
}
