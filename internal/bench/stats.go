// Package bench provides the statistics and formatting helpers of the
// experiment harness: latency summaries (median and quartiles, as the
// paper's box plots report) and aligned table rendering for the
// regenerated figures.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Summary condenses a latency sample set the way the paper's plots do.
type Summary struct {
	N             int
	Min, Max      time.Duration
	Mean, Median  time.Duration
	P25, P75, P99 time.Duration
	StdDev        time.Duration
}

// Summarize computes a Summary; it copies and sorts the input.
func Summarize(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := make([]time.Duration, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })

	var sum time.Duration
	for _, v := range s {
		sum += v
	}
	mean := sum / time.Duration(len(s))

	var varAcc float64
	for _, v := range s {
		d := float64(v - mean)
		varAcc += d * d
	}
	std := time.Duration(0)
	if len(s) > 1 {
		std = time.Duration(sqrt(varAcc / float64(len(s)-1)))
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   mean,
		Median: percentile(s, 0.50),
		P25:    percentile(s, 0.25),
		P75:    percentile(s, 0.75),
		P99:    percentile(s, 0.99),
		StdDev: std,
	}
}

// percentile returns the p-quantile of sorted samples (nearest-rank with
// linear interpolation).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}

// sqrt is a dependency-free Newton iteration (avoids importing math for
// one call site and keeps the package tiny).
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Micros renders a duration as microseconds with two decimals, the unit
// of the paper's latency figures.
func Micros(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Microsecond))
}

// Table renders rows as an aligned plain-text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}
