// Tenant-isolation measurement schema: BENCH_isolation.json records the
// latency tail of a time-sensitive tenant with and without a best-effort
// tenant flooding the same node (DESIGN.md §12). The headline claim is
// 802.1Qbv-style timing isolation — a noisy neighbour cannot move a TSN
// tenant's p99.9 past its gate-cycle budget — and this file keeps that
// claim regressable the same way BENCH_hotpath.json does for ns/op.

package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// IsolationResult is one isolation scenario: the TSN tenant's consume
// latency quantiles (virtual time, which includes real gate waits) and
// the interfering load that was running alongside.
type IsolationResult struct {
	Name string `json:"name"`
	// TSNMessages is how many paced time-sensitive messages were sent.
	TSNMessages int `json:"tsn_messages"`
	// FloodMessages is how many best-effort messages the noisy tenant
	// pushed through during the window (0 in the quiet baseline).
	FloodMessages int `json:"flood_messages"`
	// FloodPktPerSec is the noisy tenant's delivered rate.
	FloodPktPerSec float64 `json:"flood_pkt_per_sec"`
	// TSN consume-latency quantiles in nanoseconds.
	TSNP50Ns  float64 `json:"tsn_p50_ns"`
	TSNP99Ns  float64 `json:"tsn_p99_ns"`
	TSNP999Ns float64 `json:"tsn_p999_ns"`
	// BudgetNs is the p99.9 ceiling the scenario was gated against.
	BudgetNs float64 `json:"budget_ns"`
	// Pass records whether TSNP999Ns stayed within BudgetNs.
	Pass bool `json:"pass"`
}

// String renders a result for terminal output.
func (r IsolationResult) String() string {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	return fmt.Sprintf("%-20s %6d tsn msgs  %8d flood msgs (%10.0f pkt/s)  p50 %8.0f ns  p99 %8.0f ns  p99.9 %8.0f ns  budget %8.0f ns  %s",
		r.Name, r.TSNMessages, r.FloodMessages, r.FloodPktPerSec,
		r.TSNP50Ns, r.TSNP99Ns, r.TSNP999Ns, r.BudgetNs, status)
}

// IsolationBaseline is the schema of BENCH_isolation.json.
type IsolationBaseline struct {
	Note    string            `json:"note"`
	Env     *BenchEnv         `json:"env,omitempty"`
	Results []IsolationResult `json:"results"`
}

// WriteIsolationJSON writes the baseline file, indented for
// diff-friendly commits.
func WriteIsolationJSON(path string, results []IsolationResult) error {
	env := CurrentEnv()
	b := IsolationBaseline{
		Note: "Tenant timing-isolation baseline: a paced class-7 TSN tenant's " +
			"consume-latency tail (virtual time, including real gate waits) " +
			"measured quiet and under a best-effort tenant flood on the same " +
			"node. p99.9 must stay within the gate-cycle budget in both runs. " +
			"Regenerate with `make bench-isolation`.",
		Env:     &env,
		Results: results,
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
