// Hot-path measurement harness: wall-clock ns/op plus allocation
// counters for the middleware's steady-state operations, emitted as
// machine-readable JSON (BENCH_hotpath.json) so successive PRs have a
// perf trajectory to regress against. The paper's headline claim is
// ns-scale runtime overhead (§6.2); this file is how the repository
// keeps that claim honest over time.

package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// HotpathResult is one measured hot-path operation.
type HotpathResult struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// String renders a result the way `go test -bench` does.
func (r HotpathResult) String() string {
	return fmt.Sprintf("%-28s %8d iters  %10.1f ns/op  %7.2f allocs/op  %9.1f B/op",
		r.Name, r.Iters, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
}

// MeasureHotpath times iters invocations of op and reports per-op wall
// time and allocation deltas. Allocation counters are process-wide
// (runtime.MemStats), so background activity — the runtime's polling
// threads included — counts against the measured path; that is
// deliberate: an allocation smuggled into the poller is still a hot-path
// allocation. Callers should warm the path first so one-time pool fills
// don't bill the steady state.
func MeasureHotpath(name string, iters int, op func() error) (HotpathResult, error) {
	if iters <= 0 {
		return HotpathResult{}, fmt.Errorf("bench: iters must be positive, got %d", iters)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := op(); err != nil {
			return HotpathResult{}, fmt.Errorf("bench: %s iter %d: %w", name, i, err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return HotpathResult{
		Name:        name,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / n,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / n,
	}, nil
}

// HotpathBaseline is the schema of BENCH_hotpath.json.
type HotpathBaseline struct {
	// Note documents what the numbers are for readers of the file.
	Note    string          `json:"note"`
	Results []HotpathResult `json:"results"`
}

// WriteHotpathJSON writes the baseline file, indented for diff-friendly
// commits.
func WriteHotpathJSON(path string, results []HotpathResult) error {
	b := HotpathBaseline{
		Note: "Steady-state hot-path baseline (wall-clock; allocation counters " +
			"are process-wide). Regenerate with `make bench-baseline`.",
		Results: results,
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
