// Hot-path measurement harness: wall-clock ns/op plus allocation
// counters for the middleware's steady-state operations, emitted as
// machine-readable JSON (BENCH_hotpath.json) so successive PRs have a
// perf trajectory to regress against. The paper's headline claim is
// ns-scale runtime overhead (§6.2); this file is how the repository
// keeps that claim honest over time.

package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// HotpathResult is one measured hot-path operation.
type HotpathResult struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// String renders a result the way `go test -bench` does.
func (r HotpathResult) String() string {
	return fmt.Sprintf("%-28s %8d iters  %10.1f ns/op  %7.2f allocs/op  %9.1f B/op",
		r.Name, r.Iters, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
}

// MeasureHotpath times iters invocations of op and reports per-op wall
// time and allocation deltas. Allocation counters are process-wide
// (runtime.MemStats), so background activity — the runtime's polling
// threads included — counts against the measured path; that is
// deliberate: an allocation smuggled into the poller is still a hot-path
// allocation. Callers should warm the path first so one-time pool fills
// don't bill the steady state.
//
// The measured window is GC-fenced and re-warmed: a forced collection
// drains pending frees, the collector is disabled
// (debug.SetGCPercent(-1)) until the window closes, and warmup
// iterations of op run between the fence and the first counter read.
// The order matters: the forced GC clears every sync.Pool, so the first
// ops after it repopulate the wrapper and envelope pools — a fixed
// handful of allocations that earlier baselines recorded as a spurious
// ~0.0005 allocs/op drift on paths that are provably allocation-free.
// Re-warming inside the fence puts those refills before the counters
// start, and with the collector off the pools cannot drain again
// mid-window.
func MeasureHotpath(name string, iters, warmup int, op func() error) (HotpathResult, error) {
	if iters <= 0 {
		return HotpathResult{}, fmt.Errorf("bench: iters must be positive, got %d", iters)
	}
	runtime.GC()
	gcPct := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPct)
	for i := 0; i < warmup; i++ {
		if err := op(); err != nil {
			return HotpathResult{}, fmt.Errorf("bench: %s warmup %d: %w", name, i, err)
		}
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := op(); err != nil {
			return HotpathResult{}, fmt.Errorf("bench: %s iter %d: %w", name, i, err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return HotpathResult{
		Name:        name,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / n,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / n,
	}, nil
}

// ThroughputResult is one multi-core throughput measurement: total
// packets delivered per second across a pollers × streams topology.
type ThroughputResult struct {
	Name string `json:"name"`
	// Pollers is the polling threads per datapath plugin; Streams is the
	// concurrent emitting sources (one goroutine each).
	Pollers int `json:"pollers"`
	Streams int `json:"streams"`
	// Packets is the total delivered; Elapsed the wall-clock seconds.
	Packets int     `json:"packets"`
	Elapsed float64 `json:"elapsed_sec"`
	// PacketsPerSec is the headline rate.
	PacketsPerSec float64 `json:"packets_per_sec"`
	// Stage breakdown means (virtual ns per packet), from the runtime's
	// telemetry histograms: scheduler dwell and delivery latency.
	SchedDwellNs float64 `json:"sched_dwell_ns"`
	DeliverNs    float64 `json:"deliver_ns"`
}

// String renders a throughput result for terminal output.
func (r ThroughputResult) String() string {
	return fmt.Sprintf("%-28s %2d pollers %2d streams  %12.0f pkt/s  dwell %8.1f ns  deliver %8.1f ns",
		r.Name, r.Pollers, r.Streams, r.PacketsPerSec, r.SchedDwellNs, r.DeliverNs)
}

// BenchEnv records the machine the numbers were taken on, so a baseline
// diff can tell a code regression from a hardware change.
type BenchEnv struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CurrentEnv captures the running process's environment metadata.
func CurrentEnv() BenchEnv {
	return BenchEnv{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// HotpathBaseline is the schema of BENCH_hotpath.json. Env and
// Throughput are omitted when empty, so files written by older harness
// versions parse unchanged.
type HotpathBaseline struct {
	// Note documents what the numbers are for readers of the file.
	Note string `json:"note"`
	// Env records the measuring machine (nil in pre-env baselines).
	Env        *BenchEnv          `json:"env,omitempty"`
	Results    []HotpathResult    `json:"results"`
	Throughput []ThroughputResult `json:"throughput,omitempty"`
}

// ReadHotpathJSON parses a baseline file (any schema version).
func ReadHotpathJSON(path string) (HotpathBaseline, error) {
	var b HotpathBaseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return b, nil
}

// WriteHotpathJSON writes the baseline file, indented for diff-friendly
// commits.
func WriteHotpathJSON(path string, results []HotpathResult, throughput []ThroughputResult) error {
	env := CurrentEnv()
	b := HotpathBaseline{
		Note: "Steady-state hot-path baseline (wall-clock; allocation counters " +
			"are process-wide, measured after warmup inside a GC-fenced window: " +
			"forced GC then GC disabled for the measurement). " +
			"Regenerate with `make bench-baseline`; gate with `make bench-compare`.",
		Env:        &env,
		Results:    results,
		Throughput: throughput,
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// CompareHotpath checks fresh results against a baseline: a named
// result regresses when its ns/op exceeds the baseline's by more than
// tolerance (a fraction, e.g. 0.10 for +10%) or its allocs/op rises
// above the baseline's (any increase on a zero-allocation path is a
// bug, not noise). Results absent from either side are reported as
// informational lines, not failures. The returned report is
// human-readable; failed tells the caller to exit non-zero.
func CompareHotpath(baseline HotpathBaseline, fresh []HotpathResult, tolerance float64) (report string, failed bool) {
	base := make(map[string]HotpathResult, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	out := ""
	for _, r := range fresh {
		b, ok := base[r.Name]
		if !ok {
			out += fmt.Sprintf("NEW   %-28s %10.1f ns/op (no baseline entry)\n", r.Name, r.NsPerOp)
			continue
		}
		limit := b.NsPerOp * (1 + tolerance)
		switch {
		case r.NsPerOp > limit:
			out += fmt.Sprintf("FAIL  %-28s %10.1f ns/op > %.1f (baseline %.1f +%.0f%%)\n",
				r.Name, r.NsPerOp, limit, b.NsPerOp, tolerance*100)
			failed = true
		case r.AllocsPerOp > b.AllocsPerOp:
			out += fmt.Sprintf("FAIL  %-28s %7.4f allocs/op > baseline %.4f\n",
				r.Name, r.AllocsPerOp, b.AllocsPerOp)
			failed = true
		default:
			out += fmt.Sprintf("ok    %-28s %10.1f ns/op (baseline %.1f, limit %.1f)\n",
				r.Name, r.NsPerOp, b.NsPerOp, limit)
		}
		delete(base, r.Name)
	}
	for _, b := range baseline.Results {
		if _, left := base[b.Name]; left {
			out += fmt.Sprintf("MISS  %-28s in baseline but not re-measured\n", b.Name)
		}
	}
	return out, failed
}
