// Package fabric is the virtual network substrate of the reproduction: NIC
// ports, point-to-point links and a store-and-forward switch, replacing the
// 100 Gbps Mellanox NICs (and, in the cloud testbed, the Dell Z9264F-ON
// switch) of the paper's testbeds (Table 2).
//
// The fabric really moves bytes between in-process "hosts", so all
// functional middleware behaviour (delivery, dispatch, loss, backpressure)
// is exercised for real. In parallel, every frame carries a virtual
// timestamp that the fabric advances by the modeled serialization time,
// propagation delay and switch latency, so experiments can report
// deterministic µs-scale latencies (see internal/timebase).
package fabric

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/insane-mw/insane/internal/netstack"
	"github.com/insane-mw/insane/internal/timebase"
)

// Errors returned by the fabric.
var (
	// ErrPortClosed is returned when sending or receiving on a detached
	// port.
	ErrPortClosed = errors.New("fabric: port closed")
	// ErrNotAttached is returned when a port has no link.
	ErrNotAttached = errors.New("fabric: port not attached to a link")
)

// Breakdown accumulates where a frame's virtual time went, mirroring the
// stage split of the paper's Fig. 6 (send / network / receive / data
// processing).
type Breakdown struct {
	Send       time.Duration // sender-side CPU (app, runtime, driver)
	Network    time.Duration // serialization + propagation + switch
	Recv       time.Duration // receiver-side CPU (driver, runtime)
	Processing time.Duration // protocol/data processing (netstack etc.)
}

// Total returns the sum of all stages.
func (b Breakdown) Total() time.Duration {
	return b.Send + b.Network + b.Recv + b.Processing
}

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o Breakdown) {
	b.Send += o.Send
	b.Network += o.Network
	b.Recv += o.Recv
	b.Processing += o.Processing
}

// Frame is one Ethernet frame in flight, with its virtual-time annotations.
type Frame struct {
	// Data is the raw frame (Ethernet headers included). The fabric
	// copies at the wire, so the slice is owned by the receiver.
	Data []byte
	// VTime is the virtual time at which the frame becomes visible at
	// its current location (after transmission: arrival time at the
	// receiving NIC).
	VTime timebase.VTime
	// Breakdown accounts for where the virtual time was spent.
	Breakdown Breakdown
}

// LinkParams models one link.
type LinkParams struct {
	// Rate is the line rate. Zero means infinitely fast.
	Rate timebase.Rate
	// PropDelay is the one-way propagation (plus PHY) delay.
	PropDelay time.Duration
	// LossRate is the probability in [0,1] that a frame is silently
	// dropped, for failure-injection experiments.
	LossRate float64
	// Jitter adds a uniform ±Jitter perturbation to each frame's wire
	// latency, modeling the PHY/arbitration noise behind the quartile
	// whiskers of the paper's latency plots. Zero keeps the fabric
	// deterministic.
	Jitter time.Duration
	// MTU is the maximum IP packet size. Zero means JumboMTU (the
	// evaluation enables jumbo frames, §6.2).
	MTU int
}

func (p LinkParams) mtu() int {
	if p.MTU == 0 {
		return netstack.JumboMTU
	}
	return p.MTU
}

// DefaultLink reproduces the local testbed: two nodes directly
// interconnected at 100 Gbps.
var DefaultLink = LinkParams{
	Rate:      100 * timebase.Gbps,
	PropDelay: 450 * time.Nanosecond,
	MTU:       netstack.JumboMTU,
}

// SwitchParams models a store-and-forward switch.
type SwitchParams struct {
	// Latency is added per traversal; the paper measured 1.7 µs on the
	// CloudLab Dell Z9264F-ON.
	Latency time.Duration
}

// PortStats counts per-port activity.
type PortStats struct {
	TxFrames, RxFrames uint64
	TxBytes, RxBytes   uint64
	Dropped            uint64 // frames lost on the wire or on full RX queue
}

// Port is a NIC port attached to a host.
type Port struct {
	mac  netstack.MAC
	ip   netstack.IPv4
	net  *Network
	name string

	rx     chan Frame
	closed atomic.Bool

	// attachment: exactly one of peer / sw is set once connected.
	mu   sync.Mutex
	link LinkParams
	peer *Port
	sw   *Switch
	rng  *rand.Rand

	txFrames, rxFrames atomic.Uint64
	txBytes, rxBytes   atomic.Uint64
	dropped            atomic.Uint64
}

// MAC returns the port's Ethernet address.
func (p *Port) MAC() netstack.MAC { return p.mac }

// IP returns the host address bound to the port.
func (p *Port) IP() netstack.IPv4 { return p.ip }

// MTU returns the MTU of the attached link (JumboMTU if unattached).
func (p *Port) MTU() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.peer == nil && p.sw == nil {
		return netstack.JumboMTU
	}
	return p.link.mtu()
}

// Rate returns the line rate of the attached link.
func (p *Port) Rate() timebase.Rate {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.link.Rate
}

// Stats returns a snapshot of the port counters.
func (p *Port) Stats() PortStats {
	return PortStats{
		TxFrames: p.txFrames.Load(),
		RxFrames: p.rxFrames.Load(),
		TxBytes:  p.txBytes.Load(),
		RxBytes:  p.rxBytes.Load(),
		Dropped:  p.dropped.Load(),
	}
}

// Transmit sends one frame. data must be a full Ethernet frame; the fabric
// copies it (the "wire"), so the caller may reuse its buffer immediately —
// this is where a real NIC would DMA out of the registered memory region.
// vt is the virtual time at which the frame hits the wire. Transmission
// never blocks: if the receiver queue is full the frame is dropped, which
// matches the best-effort semantics of the paper (§5.2).
func (p *Port) Transmit(data []byte, vt timebase.VTime, bd Breakdown) error {
	if p.closed.Load() {
		return ErrPortClosed
	}
	p.mu.Lock()
	peer, sw, link, rng := p.peer, p.sw, p.link, p.rng
	p.mu.Unlock()
	if peer == nil && sw == nil {
		return ErrNotAttached
	}

	p.txFrames.Add(1)
	p.txBytes.Add(uint64(len(data)))

	// Wire model: serialization of frame + preamble/IFG, then
	// propagation, optionally perturbed by seeded jitter.
	wire := link.Rate.Transmission(len(data)+netstack.WireOverhead) + link.PropDelay
	if rng != nil && (link.LossRate > 0 || link.Jitter > 0) {
		p.mu.Lock()
		lost := link.LossRate > 0 && rng.Float64() < link.LossRate
		if link.Jitter > 0 {
			wire += time.Duration(rng.Int63n(int64(2*link.Jitter))) - link.Jitter
			if wire < 0 {
				wire = 0
			}
		}
		p.mu.Unlock()
		if lost {
			p.dropped.Add(1)
			return nil // silently lost, like a real wire
		}
	}

	f := Frame{
		Data:      append(make([]byte, 0, len(data)), data...),
		VTime:     vt.Add(wire),
		Breakdown: bd,
	}
	f.Breakdown.Network += wire

	if sw != nil {
		sw.forward(p, f)
		return nil
	}
	peer.deliver(f)
	return nil
}

// deliver enqueues a frame on the port's receive queue, dropping on
// overflow (the receiver cannot keep up: the paper's Fig. 8b regime).
func (p *Port) deliver(f Frame) {
	if p.closed.Load() {
		p.dropped.Add(1)
		return
	}
	select {
	case p.rx <- f:
		p.rxFrames.Add(1)
		p.rxBytes.Add(uint64(len(f.Data)))
	default:
		p.dropped.Add(1)
	}
}

// TryRecv returns the next received frame without blocking.
func (p *Port) TryRecv() (Frame, bool) {
	select {
	case f, ok := <-p.rx:
		if !ok {
			return Frame{}, false
		}
		return f, true
	default:
		return Frame{}, false
	}
}

// Recv blocks until a frame arrives, the timeout elapses, or the port
// closes. A zero timeout blocks indefinitely.
func (p *Port) Recv(timeout time.Duration) (Frame, error) {
	if timeout <= 0 {
		f, ok := <-p.rx
		if !ok {
			return Frame{}, ErrPortClosed
		}
		return f, nil
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case f, ok := <-p.rx:
		if !ok {
			return Frame{}, ErrPortClosed
		}
		return f, nil
	case <-t.C:
		return Frame{}, fmt.Errorf("fabric: recv timeout after %v", timeout)
	}
}

// Close detaches the port; in-flight frames are dropped.
func (p *Port) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.rx)
	}
}

// rxQueueDepth bounds the per-port receive queue; a real NIC RX descriptor
// ring is of comparable size.
const rxQueueDepth = 4096

// Switch is a store-and-forward Ethernet switch with a static forwarding
// database built at connect time.
type Switch struct {
	name   string
	params SwitchParams

	mu  sync.RWMutex
	fdb map[netstack.MAC]*Port
}

// forward moves a frame from the ingress port to its destination(s).
func (s *Switch) forward(from *Port, f Frame) {
	f.VTime = f.VTime.Add(s.params.Latency)
	f.Breakdown.Network += s.params.Latency

	dst := netstack.MAC(f.Data[0:6])
	s.mu.RLock()
	defer s.mu.RUnlock()
	if dst.IsBroadcast() {
		for _, p := range s.fdb {
			if p != from {
				p.deliver(f)
			}
		}
		return
	}
	if p, ok := s.fdb[dst]; ok && p != from {
		p.deliver(f)
		return
	}
	from.dropped.Add(1) // unknown unicast: count against sender
}

// Network is a collection of hosts, links and switches.
type Network struct {
	mu       sync.Mutex
	ports    map[string]*Port
	switches []*Switch
	resolver *netstack.Resolver
	seed     int64
	nextMAC  uint32
}

// New returns an empty network. seed makes loss injection deterministic.
func New(seed int64) *Network {
	return &Network{
		ports:    make(map[string]*Port),
		resolver: netstack.NewResolver(),
		seed:     seed,
	}
}

// AddHost creates a single-port host with the given name and IP address.
func (n *Network) AddHost(name string, ip netstack.IPv4) (*Port, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.ports[name]; dup {
		return nil, fmt.Errorf("fabric: duplicate host %q", name)
	}
	n.nextMAC++
	mac := netstack.MAC{0x02, 0, 0, byte(n.nextMAC >> 16), byte(n.nextMAC >> 8), byte(n.nextMAC)}
	p := &Port{
		mac:  mac,
		ip:   ip,
		net:  n,
		name: name,
		rx:   make(chan Frame, rxQueueDepth),
	}
	n.ports[name] = p
	n.resolver.Add(ip, mac)
	return p, nil
}

// Resolver returns the IP→MAC table for the whole network (static ARP).
func (n *Network) Resolver() *netstack.Resolver { return n.resolver }

// ConnectDirect wires two ports back to back (the local testbed topology).
func (n *Network) ConnectDirect(a, b *Port, link LinkParams) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, p := range []*Port{a, b} {
		p.mu.Lock()
		attached := p.peer != nil || p.sw != nil
		p.mu.Unlock()
		if attached {
			return fmt.Errorf("fabric: port %q already attached", p.name)
		}
	}
	a.mu.Lock()
	a.peer, a.link, a.rng = b, link, rand.New(rand.NewSource(n.seed+int64(a.mac[5])))
	a.mu.Unlock()
	b.mu.Lock()
	b.peer, b.link, b.rng = a, link, rand.New(rand.NewSource(n.seed+int64(b.mac[5])))
	b.mu.Unlock()
	return nil
}

// AddSwitch creates a switch (the public-cloud testbed topology).
func (n *Network) AddSwitch(name string, params SwitchParams) *Switch {
	n.mu.Lock()
	defer n.mu.Unlock()
	sw := &Switch{name: name, params: params, fdb: make(map[netstack.MAC]*Port)}
	n.switches = append(n.switches, sw)
	return sw
}

// ConnectToSwitch attaches a port to a switch.
func (n *Network) ConnectToSwitch(p *Port, sw *Switch, link LinkParams) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.peer != nil || p.sw != nil {
		return fmt.Errorf("fabric: port %q already attached", p.name)
	}
	p.sw, p.link, p.rng = sw, link, rand.New(rand.NewSource(n.seed+int64(p.mac[5])))
	sw.mu.Lock()
	sw.fdb[p.mac] = p
	sw.mu.Unlock()
	return nil
}
