package fabric

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/insane-mw/insane/internal/netstack"
	"github.com/insane-mw/insane/internal/timebase"
)

// buildFrame builds a minimal valid UDP frame addressed dst←src.
func buildFrame(t *testing.T, src, dst *Port, payload []byte) []byte {
	t.Helper()
	buf := make([]byte, netstack.HeadersLen+len(payload))
	copy(buf[netstack.HeadersLen:], payload)
	meta := netstack.FrameMeta{
		SrcMAC: src.MAC(), DstMAC: dst.MAC(),
		Src: netstack.Endpoint{IP: src.IP(), Port: 1},
		Dst: netstack.Endpoint{IP: dst.IP(), Port: 2},
	}
	n, err := netstack.EncodeUDP(buf, meta, len(payload), netstack.JumboMTU)
	if err != nil {
		t.Fatal(err)
	}
	return buf[:n]
}

func twoHostsDirect(t *testing.T, link LinkParams) (*Network, *Port, *Port) {
	t.Helper()
	n := New(1)
	a, err := n.AddHost("a", netstack.IPv4{10, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddHost("b", netstack.IPv4{10, 0, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.ConnectDirect(a, b, link); err != nil {
		t.Fatal(err)
	}
	return n, a, b
}

func TestDirectDelivery(t *testing.T) {
	_, a, b := twoHostsDirect(t, DefaultLink)
	payload := []byte("ping")
	frame := buildFrame(t, a, b, payload)
	if err := a.Transmit(frame, 0, Breakdown{}); err != nil {
		t.Fatal(err)
	}
	f, err := b.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := netstack.DecodeUDP(f.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload = %q, want %q", got, payload)
	}
}

func TestWireCopyIsolation(t *testing.T) {
	_, a, b := twoHostsDirect(t, DefaultLink)
	frame := buildFrame(t, a, b, []byte("orig"))
	if err := a.Transmit(frame, 0, Breakdown{}); err != nil {
		t.Fatal(err)
	}
	// Mutating the sender's buffer after Transmit must not affect the
	// delivered frame (the wire copies).
	for i := range frame {
		frame[i] = 0
	}
	f, err := b.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := netstack.DecodeUDP(f.Data)
	if err != nil {
		t.Fatalf("delivered frame corrupted: %v", err)
	}
	if string(got) != "orig" {
		t.Errorf("payload = %q, want orig", got)
	}
}

func TestVirtualTimeAdvance(t *testing.T) {
	link := LinkParams{Rate: 100 * timebase.Gbps, PropDelay: 450 * time.Nanosecond}
	_, a, b := twoHostsDirect(t, link)
	frame := buildFrame(t, a, b, make([]byte, 958)) // frame 1000B
	start := timebase.VTime(1000)
	if err := a.Transmit(frame, start, Breakdown{}); err != nil {
		t.Fatal(err)
	}
	f, err := b.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// serialization: (1000+24)*8 bits / 100e9 = 81.92 ns → 81 ns truncated
	wantWire := link.Rate.Transmission(len(frame)+netstack.WireOverhead) + link.PropDelay
	if got := f.VTime.Sub(start); got != wantWire {
		t.Errorf("wire time = %v, want %v", got, wantWire)
	}
	if f.Breakdown.Network != wantWire {
		t.Errorf("breakdown network = %v, want %v", f.Breakdown.Network, wantWire)
	}
}

func TestSwitchForwardingAndLatency(t *testing.T) {
	n := New(1)
	a, _ := n.AddHost("a", netstack.IPv4{10, 0, 0, 1})
	b, _ := n.AddHost("b", netstack.IPv4{10, 0, 0, 2})
	c, _ := n.AddHost("c", netstack.IPv4{10, 0, 0, 3})
	sw := n.AddSwitch("tor", SwitchParams{Latency: 1700 * time.Nanosecond})
	link := LinkParams{Rate: 100 * timebase.Gbps, PropDelay: 100 * time.Nanosecond}
	for _, p := range []*Port{a, b, c} {
		if err := n.ConnectToSwitch(p, sw, link); err != nil {
			t.Fatal(err)
		}
	}
	frame := buildFrame(t, a, b, []byte("x"))
	if err := a.Transmit(frame, 0, Breakdown{}); err != nil {
		t.Fatal(err)
	}
	f, err := b.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wantWire := link.Rate.Transmission(len(frame)+netstack.WireOverhead) + link.PropDelay + 1700*time.Nanosecond
	if got := time.Duration(f.VTime); got != wantWire {
		t.Errorf("switched wire time = %v, want %v", got, wantWire)
	}
	// c must not receive the unicast frame.
	if _, ok := c.TryRecv(); ok {
		t.Error("unicast frame flooded to third port")
	}
}

func TestSwitchBroadcast(t *testing.T) {
	n := New(1)
	a, _ := n.AddHost("a", netstack.IPv4{10, 0, 0, 1})
	b, _ := n.AddHost("b", netstack.IPv4{10, 0, 0, 2})
	c, _ := n.AddHost("c", netstack.IPv4{10, 0, 0, 3})
	sw := n.AddSwitch("tor", SwitchParams{})
	for _, p := range []*Port{a, b, c} {
		if err := n.ConnectToSwitch(p, sw, LinkParams{}); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, netstack.HeadersLen+1)
	meta := netstack.FrameMeta{
		SrcMAC: a.MAC(), DstMAC: netstack.BroadcastMAC,
		Src: netstack.Endpoint{IP: a.IP(), Port: 1},
		Dst: netstack.Endpoint{IP: netstack.IPv4{255, 255, 255, 255}, Port: 2},
	}
	fl, err := netstack.EncodeUDP(buf, meta, 1, netstack.JumboMTU)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Transmit(buf[:fl], 0, Breakdown{}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*Port{b, c} {
		if _, err := p.Recv(time.Second); err != nil {
			t.Errorf("broadcast not delivered to %s: %v", p.MAC(), err)
		}
	}
	// Sender must not hear its own broadcast.
	if _, ok := a.TryRecv(); ok {
		t.Error("broadcast echoed to sender")
	}
}

func TestLossInjectionDeterministic(t *testing.T) {
	link := DefaultLink
	link.LossRate = 0.5
	_, a, b := twoHostsDirect(t, link)
	const total = 1000
	for i := 0; i < total; i++ {
		frame := buildFrame(t, a, b, []byte{byte(i)})
		if err := a.Transmit(frame, 0, Breakdown{}); err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if st.Dropped == 0 || st.Dropped == total {
		t.Errorf("dropped = %d, want 0 < d < %d", st.Dropped, total)
	}
	got := 0
	for {
		if _, ok := b.TryRecv(); !ok {
			break
		}
		got++
	}
	if uint64(got)+st.Dropped != total {
		t.Errorf("received %d + dropped %d != %d", got, st.Dropped, total)
	}
	// Rough sanity: loss near 50%.
	if st.Dropped < total/4 || st.Dropped > 3*total/4 {
		t.Errorf("loss %d far from 50%% of %d", st.Dropped, total)
	}
}

func TestRxQueueOverflowDrops(t *testing.T) {
	_, a, b := twoHostsDirect(t, DefaultLink)
	frame := buildFrame(t, a, b, []byte("x"))
	for i := 0; i < rxQueueDepth+100; i++ {
		if err := a.Transmit(frame, 0, Breakdown{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Stats().Dropped; got != 100 {
		t.Errorf("dropped = %d, want 100", got)
	}
	if got := b.Stats().RxFrames; got != rxQueueDepth {
		t.Errorf("rx frames = %d, want %d", got, rxQueueDepth)
	}
}

func TestPortLifecycleErrors(t *testing.T) {
	n := New(1)
	a, _ := n.AddHost("a", netstack.IPv4{10, 0, 0, 1})
	if err := a.Transmit([]byte("x"), 0, Breakdown{}); !errors.Is(err, ErrNotAttached) {
		t.Errorf("unattached transmit err = %v", err)
	}
	b, _ := n.AddHost("b", netstack.IPv4{10, 0, 0, 2})
	if err := n.ConnectDirect(a, b, DefaultLink); err != nil {
		t.Fatal(err)
	}
	if err := n.ConnectDirect(a, b, DefaultLink); err == nil {
		t.Error("double connect: want error")
	}
	if _, err := n.AddHost("a", netstack.IPv4{10, 0, 0, 9}); err == nil {
		t.Error("duplicate host: want error")
	}
	a.Close()
	if err := a.Transmit([]byte("x"), 0, Breakdown{}); !errors.Is(err, ErrPortClosed) {
		t.Errorf("closed transmit err = %v", err)
	}
	if _, err := a.Recv(time.Millisecond); !errors.Is(err, ErrPortClosed) {
		t.Errorf("closed recv err = %v", err)
	}
	a.Close() // idempotent
}

func TestRecvTimeout(t *testing.T) {
	_, a, _ := twoHostsDirect(t, DefaultLink)
	start := time.Now()
	if _, err := a.Recv(10 * time.Millisecond); err == nil {
		t.Error("want timeout error")
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Error("Recv returned before timeout")
	}
}

func TestResolverPopulated(t *testing.T) {
	n, a, b := twoHostsDirect(t, DefaultLink)
	mac, err := n.Resolver().Resolve(b.IP())
	if err != nil || mac != b.MAC() {
		t.Errorf("Resolve(b) = %v,%v", mac, err)
	}
	mac, err = n.Resolver().Resolve(a.IP())
	if err != nil || mac != a.MAC() {
		t.Errorf("Resolve(a) = %v,%v", mac, err)
	}
}

func TestBreakdownAccumulation(t *testing.T) {
	var b Breakdown
	b.Add(Breakdown{Send: 1, Network: 2, Recv: 3, Processing: 4})
	b.Add(Breakdown{Send: 10, Network: 20, Recv: 30, Processing: 40})
	want := Breakdown{Send: 11, Network: 22, Recv: 33, Processing: 44}
	if b != want {
		t.Errorf("breakdown = %+v, want %+v", b, want)
	}
	if b.Total() != 110 {
		t.Errorf("total = %v, want 110", b.Total())
	}
}

func TestJitterSpreadsWireLatency(t *testing.T) {
	link := DefaultLink
	link.Jitter = 200 * time.Nanosecond
	_, a, b := twoHostsDirect(t, link)
	frame := buildFrame(t, a, b, []byte("j"))
	seen := map[time.Duration]bool{}
	var minW, maxW time.Duration
	for i := 0; i < 200; i++ {
		if err := a.Transmit(frame, 0, Breakdown{}); err != nil {
			t.Fatal(err)
		}
		f, err := b.Recv(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		w := f.Breakdown.Network
		seen[w] = true
		if minW == 0 || w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	}
	if len(seen) < 10 {
		t.Errorf("jitter produced only %d distinct wire times", len(seen))
	}
	// Spread bounded by ±Jitter around the nominal value.
	if maxW-minW > 2*link.Jitter {
		t.Errorf("spread %v exceeds 2x jitter", maxW-minW)
	}
	nominal := link.Rate.Transmission(len(frame)+netstack.WireOverhead) + link.PropDelay
	if minW < nominal-link.Jitter || maxW > nominal+link.Jitter {
		t.Errorf("wire time range [%v,%v] outside nominal %v ± %v", minW, maxW, nominal, link.Jitter)
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	sample := func() []time.Duration {
		link := DefaultLink
		link.Jitter = 150 * time.Nanosecond
		_, a, b := twoHostsDirect(t, link)
		frame := buildFrame(t, a, b, []byte("d"))
		var out []time.Duration
		for i := 0; i < 20; i++ {
			if err := a.Transmit(frame, 0, Breakdown{}); err != nil {
				t.Fatal(err)
			}
			f, err := b.Recv(time.Second)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, f.Breakdown.Network)
		}
		return out
	}
	s1, s2 := sample(), sample()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("same seed produced different jitter at %d: %v vs %v", i, s1[i], s2[i])
		}
	}
}

func TestSwitchUnknownUnicastDropped(t *testing.T) {
	n := New(1)
	a, _ := n.AddHost("a", netstack.IPv4{10, 0, 0, 1})
	b, _ := n.AddHost("b", netstack.IPv4{10, 0, 0, 2})
	sw := n.AddSwitch("tor", SwitchParams{})
	for _, p := range []*Port{a, b} {
		if err := n.ConnectToSwitch(p, sw, LinkParams{}); err != nil {
			t.Fatal(err)
		}
	}
	// Frame to a MAC the switch never learned.
	buf := make([]byte, netstack.HeadersLen+1)
	meta := netstack.FrameMeta{
		SrcMAC: a.MAC(), DstMAC: netstack.MAC{0x02, 9, 9, 9, 9, 9},
		Src: netstack.Endpoint{IP: a.IP(), Port: 1},
		Dst: netstack.Endpoint{IP: netstack.IPv4{10, 0, 0, 99}, Port: 2},
	}
	fl, err := netstack.EncodeUDP(buf, meta, 1, netstack.JumboMTU)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Transmit(buf[:fl], 0, Breakdown{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.TryRecv(); ok {
		t.Error("unknown unicast leaked to another port")
	}
	if a.Stats().Dropped != 1 {
		t.Errorf("dropped = %d, want 1 (counted against sender)", a.Stats().Dropped)
	}
}
