//go:build !race

package core

// raceEnabled lets the allocation gates skip under the race detector,
// whose instrumentation allocates on paths that are otherwise clean.
const raceEnabled = false
