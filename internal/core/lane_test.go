package core

import (
	"encoding/binary"
	"testing"
	"time"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/qos"
)

// laneOf fetches the session's TX lane for a technology (test helper).
func laneOf(c *ClientConn, tech model.Tech) *txLane {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lanes[tech]
}

// TestLaneElectionSingleSource: one source on a single-poller technology
// gets the SPSC ring.
func TestLaneElectionSingleSource(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	conn, _ := w.a.Connect()
	st, _ := conn.OpenStream(qos.Options{})
	sink, _ := st.CreateSink(41)
	src, _ := st.CreateSource(41)

	l := laneOf(conn, st.tech)
	if l == nil || !l.single() {
		t.Fatal("single source on single-poller tech: want SPSC lane")
	}
	if l.spsc == nil || l.mpmc != nil {
		t.Errorf("SPSC lane rings: spsc=%v mpmc=%v", l.spsc != nil, l.mpmc != nil)
	}
	sendOn(t, src, []byte("via-spsc"))
	d, err := sink.Consume(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sink.Release(d)
}

// TestLanePromotionOnSecondSource: a second source on the same session
// and technology promotes the lane to MPMC, one-way.
func TestLanePromotionOnSecondSource(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	conn, _ := w.a.Connect()
	st, _ := conn.OpenStream(qos.Options{})
	sink, _ := st.CreateSink(42)
	src1, _ := st.CreateSource(42)
	l := laneOf(conn, st.tech)
	if !l.single() {
		t.Fatal("first source: want SPSC mode")
	}
	src2, _ := st.CreateSource(42)
	if l.single() {
		t.Fatal("second source: want MPMC mode")
	}
	if l.mpmc == nil || l.spsc == nil {
		t.Errorf("promoted lane keeps both rings: spsc=%v mpmc=%v", l.spsc != nil, l.mpmc != nil)
	}
	// Closing a source never demotes: the state machine is one-way.
	src2.Close()
	if l.single() {
		t.Error("lane demoted after source close")
	}
	sendOn(t, src1, []byte("via-mpmc"))
	d, err := sink.Consume(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sink.Release(d)
}

// TestLaneMPMCUnderMultiPoller: with several polling threads per plugin
// the consumer side is not single, so even the first source gets MPMC.
func TestLaneMPMCUnderMultiPoller(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, func(c *Config) {
		c.PollersPerPlugin = 2
	})
	conn, _ := w.a.Connect()
	st, _ := conn.OpenStream(qos.Options{})
	sink, _ := st.CreateSink(43)
	src, _ := st.CreateSource(43)

	l := laneOf(conn, st.tech)
	if l.single() {
		t.Fatal("multi-poller tech: want MPMC lane from birth")
	}
	if l.spsc != nil {
		t.Error("multi-poller lane must not carry an SPSC ring")
	}
	sendOn(t, src, []byte("multi-poller"))
	d, err := sink.Consume(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sink.Release(d)
}

// TestLaneFIFOAcrossPromotion: tokens emitted by the first producer
// before the promotion must be consumed before its tokens emitted after
// it — the hold-back/remnant-drain protocol in action.
func TestLaneFIFOAcrossPromotion(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	conn, _ := w.a.Connect()
	st, _ := conn.OpenStream(qos.Options{})
	sink, _ := st.CreateSink(44)
	src1, _ := st.CreateSource(44)

	emitSeq := func(src *SourceHandle, tag byte, n uint32) {
		b, err := src.GetBuffer(8)
		if err != nil {
			t.Fatal(err)
		}
		b.Payload[0] = tag
		binary.LittleEndian.PutUint32(b.Payload[1:], n)
		if _, err := src.Emit(b, 8); err != nil {
			t.Fatalf("emit %c%d: %v", tag, n, err)
		}
	}

	const perPhase = 50
	for i := uint32(0); i < perPhase; i++ {
		emitSeq(src1, 'a', i)
	}
	// Promote mid-stream; CreateSource absorbs the remnant-drain window.
	src2, err := st.CreateSource(44)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < perPhase; i++ {
		emitSeq(src1, 'a', perPhase+i)
		emitSeq(src2, 'b', i)
	}

	// Per-producer order must hold across the promotion boundary.
	next := map[byte]uint32{'a': 0, 'b': 0}
	for i := 0; i < 3*perPhase; i++ {
		d, err := sink.Consume(2 * time.Second)
		if err != nil {
			t.Fatalf("consume %d: %v", i, err)
		}
		tag, n := d.Payload[0], binary.LittleEndian.Uint32(d.Payload[1:])
		if n != next[tag] {
			t.Fatalf("producer %c out of order: got %d, want %d", tag, n, next[tag])
		}
		next[tag]++
		sink.Release(d)
	}
}
