package core

import (
	"testing"
	"time"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/qos"
)

// TestSteadyStateZeroAllocCore gates the runtime-internal publish path
// (Emit → drainTX → schedule → dispatch → deliverLocal → TryConsume →
// Release) at zero heap allocations per message, below the public-API
// wrappers the root-level TestSteadyStateZeroAlloc covers. AllocsPerRun
// counts process-wide mallocs, so the polling threads are inside the
// gate; the topology is kernel-only to keep the background quiet.
func TestSteadyStateZeroAllocCore(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the gate measures the plain build")
	}
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	conn, err := w.a.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	st, err := conn.OpenStream(qos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sink, err := st.CreateSink(7)
	if err != nil {
		t.Fatal(err)
	}
	src, err := st.CreateSource(7)
	if err != nil {
		t.Fatal(err)
	}

	op := func() {
		b, err := src.GetBuffer(64)
		if err != nil {
			t.Fatal(err)
		}
		copy(b.Payload, "steady-state")
		if _, err := src.Emit(b, 64); err != nil {
			t.Fatal(err)
		}
		d, err := sink.Consume(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		sink.Release(d)
	}

	// Warm pools, poller envelope caches and topology snapshots.
	for i := 0; i < 500; i++ {
		op()
	}

	// One retry damps runtime-internal background allocations (a GC
	// cycle starting mid-run); a repeatably nonzero reading still fails.
	var avg float64
	for attempt := 0; attempt < 2; attempt++ {
		avg = testing.AllocsPerRun(200, op)
		if avg == 0 {
			return
		}
	}
	t.Fatalf("core steady-state publish path allocates: %.2f allocs/op, want 0", avg)
}
