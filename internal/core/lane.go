package core

import (
	"sync/atomic"

	"github.com/insane-mw/insane/internal/ringbuf"
)

// Lane modes: which ring Emit pushes into. A lane starts SPSC when the
// topology proves single-producer/single-consumer and is promoted to MPMC
// (one-way, never demoted) the moment a second producer registers.
const (
	laneSPSC uint32 = iota
	laneMPMC
)

// txLane is the per-(session,technology) token queue between Emit and the
// technology's polling thread. The epoch-versioned TX snapshot already
// proves which rings exist; the lane adds the producer/consumer count
// bookkeeping that lets the runtime elect the cheaper wait-free SPSC ring
// where exactly one source feeds exactly one poller, and fall back to the
// Vyukov MPMC ring everywhere else (multi-source sessions, multi-poller
// plugins). Election happens at source-creation time, so the Emit hot
// path pays one atomic mode load, not a topology walk.
//
//insane:shared
type txLane struct {
	// mode is laneSPSC or laneMPMC. Stored under the owning ClientConn's
	// mu; loaded lock-free by Emit. The release store in promoteLocked
	// orders the mpmc pointer write before the mode flip.
	mode atomic.Uint32 //insane:guardedby atomic
	// spsc is set iff the lane was born single-producer; it stays in
	// place after a promotion so the poller can drain the remnant.
	spsc *ringbuf.SPSC[txToken] //insane:guardedby immutable after=newTxLane
	// mpmc is set at construction (multi-producer lanes) or at promotion.
	// Written under the ClientConn's mu; read by producers only after an
	// acquire load of mode observes laneMPMC (RCU-style publication: the
	// mode flip is the release store that makes the pointer visible).
	mpmc *ringbuf.MPMC[txToken] //insane:guardedby rcu=promoteLocked
	// producers counts the sources ever registered on the lane; guarded
	// by the owning ClientConn's mu. It never decrements — a promoted
	// lane stays MPMC even if sources close, keeping the state machine
	// one-way.
	producers int //insane:guardedby mu=ClientConn.mu
}

// newTxLane builds a lane. spscOK is the election predicate: the caller
// proved exactly one poller consumes this technology and this is the
// lane's first producer.
func newTxLane(spscOK bool) (*txLane, error) {
	l := &txLane{}
	if spscOK {
		r, err := ringbuf.NewSPSC[txToken](txRingDepth)
		if err != nil {
			return nil, err
		}
		l.spsc = r
		l.mode.Store(laneSPSC)
		return l, nil
	}
	r, err := ringbuf.NewMPMC[txToken](txRingDepth)
	if err != nil {
		return nil, err
	}
	l.mpmc = r
	l.mode.Store(laneMPMC)
	return l, nil
}

// promoteLocked switches an SPSC lane to MPMC because a second producer
// registered. Callers hold the owning ClientConn's mu. The racing first
// producer may still complete one in-flight SPSC push — it is still the
// sole SPSC producer — and push() holds every producer back until the
// poller drains the SPSC remnant, so no producer's pre-promotion tokens
// are ever overtaken by its post-promotion ones.
func (l *txLane) promoteLocked() error {
	if l.mpmc != nil {
		return nil
	}
	r, err := ringbuf.NewMPMC[txToken](txRingDepth)
	if err != nil {
		return err
	}
	l.mpmc = r
	l.mode.Store(laneMPMC)
	return nil
}

// push appends one token, reporting whether there was room. False means
// backpressure: the caller keeps buffer ownership and may retry.
//
// On success the token — and the tenant TX charge and slot reference it
// carries — belongs to the poller that drains the lane.
//
//insane:hotpath
//insane:transfer resource=tenant-tx on=true
//insane:transfer resource=mem-slot on=true
func (l *txLane) push(tok txToken) bool {
	if l.mode.Load() == laneSPSC {
		return l.spsc.TryPush(tok)
	}
	// Promoted lane: hold every producer back until the poller drains the
	// SPSC remnant, so per-producer FIFO order survives the promotion.
	// The check is one atomic pair on lanes that were ever promoted and a
	// nil test on lanes born MPMC.
	if l.spsc != nil && l.spsc.Len() > 0 {
		return false
	}
	return l.mpmc.TryPush(tok)
}

// pop drains one buffered token, SPSC remnant first (the order push
// enforces across a promotion). It is the teardown-side counterpart of
// push: the caller takes over the tenant TX charge and slot reference
// the token carries. Only safe once no poller consumes the lane — the
// runtime guarantees that by dropping the session from the poll list
// and waiting out two poller passes before reclaiming.
//
//insane:acquire resource=tenant-tx on=true
//insane:acquire resource=mem-slot on=true
func (l *txLane) pop() (txToken, bool) {
	if l.spsc != nil {
		if tok, ok := l.spsc.TryPop(); ok {
			return tok, true
		}
	}
	if l.mpmc != nil {
		if tok, ok := l.mpmc.TryPop(); ok {
			return tok, true
		}
	}
	return txToken{}, false
}

// queued returns the tokens buffered in the lane (both rings during a
// promotion transition). Snapshot semantics, like ringbuf Len.
func (l *txLane) queued() int {
	n := 0
	if l.spsc != nil {
		n += l.spsc.Len()
	}
	if l.mpmc != nil {
		n += l.mpmc.Len()
	}
	return n
}

// single reports whether the lane is still in SPSC mode (tests and
// introspection; the hot path reads mode directly).
func (l *txLane) single() bool { return l.mode.Load() == laneSPSC }
