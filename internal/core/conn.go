package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/insane-mw/insane/internal/fabric"
	"github.com/insane-mw/insane/internal/mempool"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/qos"
	"github.com/insane-mw/insane/internal/ringbuf"
	"github.com/insane-mw/insane/internal/sched"
	"github.com/insane-mw/insane/internal/telemetry"
	"github.com/insane-mw/insane/internal/timebase"
)

// Client-facing errors.
var (
	// ErrClosed is returned on operations against closed connections,
	// streams, sources or sinks.
	ErrClosed = errors.New("core: closed")
	// ErrBackpressure is returned by Emit when the session's TX ring is
	// full; the caller keeps buffer ownership and should retry.
	ErrBackpressure = errors.New("core: TX ring full, retry")
	// ErrNoData is returned by non-blocking consume on an empty sink.
	ErrNoData = errors.New("core: no data available")
	// ErrTimeout is returned by blocking consume when the deadline hits.
	ErrTimeout = errors.New("core: consume timeout")
	// ErrCanceled is returned by ConsumeCancel when the cancel channel
	// closes before data arrives; the public layer translates it to the
	// caller's context error.
	ErrCanceled = errors.New("core: consume canceled")
	// ErrNoDatapath is returned by OpenStream when the QoS mapping
	// picked a technology this host has no open endpoint for.
	ErrNoDatapath = errors.New("core: no endpoint for mapped technology")
	// ErrEmitRange is returned by Emit when the length is negative or
	// exceeds the buffer's payload capacity. It is a static sentinel —
	// Emit is on the hot path and must not format an error per call.
	ErrEmitRange = errors.New("core: emit length out of range")
)

// txToken travels from the client library to the runtime over the
// per-technology TX rings: slot ids, never bytes (§5.3, Fig. 4).
type txToken struct {
	slot    mempool.SlotID
	msgLen  int // INSANE header + payload
	channel uint32
	class   uint8
	timing  qos.Timing
	seq     uint32
	src     *SourceHandle
	vtime   timebase.VTime
	bd      fabric.Breakdown
	// ten is the emitting session's tenant (nil = default): the poller
	// uncharges the in-flight TX token and tags the packet with it.
	ten *tenant
	// noTel opts the message out of the latency histograms (stream-level
	// telemetry opt-out; counters still run).
	noTel bool
}

// rxToken travels from the runtime to a sink's RX ring.
type rxToken struct {
	slot    mempool.SlotID
	buf     []byte
	off     int
	length  int
	channel uint32
	vtime   timebase.VTime
	bd      fabric.Breakdown
}

// txRingDepth bounds each per-technology session TX ring.
const txRingDepth = 1024

// rxRingDepth bounds each sink RX ring.
const rxRingDepth = 1024

// ClientConn is one application session with the local runtime
// (init_session in the paper's API, Fig. 2).
//
//insane:shared
type ClientConn struct {
	rt *Runtime      //insane:guardedby immutable after=ConnectTenant
	id mempool.Owner //insane:guardedby immutable after=ConnectTenant
	// ten is the session's tenant binding, fixed at ConnectTenant (nil =
	// the default tenant: no quotas, no per-tenant telemetry).
	ten *tenant //insane:guardedby immutable after=ConnectTenant

	mu      sync.Mutex
	lanes   map[model.Tech]*txLane   //insane:guardedby mu=mu
	streams map[uint64]*StreamHandle //insane:guardedby mu=mu
	closed  bool                     //insane:guardedby mu=mu
}

// Tenant returns the session's tenant name ("" for the default tenant).
func (c *ClientConn) Tenant() string {
	if c.ten == nil {
		return ""
	}
	return c.ten.name
}

// Owner returns the session's memory-pool owner id.
func (c *ClientConn) Owner() mempool.Owner { return c.id }

// lane returns (creating if needed) the session's TX lane toward the
// polling thread of the given technology, registering the caller as one
// more producer. The first producer on a single-poller technology gets
// the cheap SPSC ring; a second producer promotes the lane to MPMC.
func (c *ClientConn) lane(tech model.Tech) (*txLane, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if l, ok := c.lanes[tech]; ok {
		l.producers++
		if l.producers > 1 {
			if err := l.promoteLocked(); err != nil {
				return nil, err
			}
		}
		// Promotion adds a ring: invalidate the cached TX topology.
		c.rt.topoEpoch.Add(1)
		return l, nil
	}
	// SPSC is provable only when exactly one polling thread consumes this
	// technology (SharedPoller or the default one-poller-per-plugin
	// mapping) and this first source stays the lane's only producer.
	st := c.rt.techs[tech]
	l, err := newTxLane(st != nil && st.consumers == 1)
	if err != nil {
		return nil, err
	}
	l.producers = 1
	c.lanes[tech] = l
	// New lane: invalidate the pollers' cached TX topology.
	c.rt.topoEpoch.Add(1)
	return l, nil
}

// OpenStream maps the quality options to a technology available on this
// host and returns the stream handle (create_stream).
func (c *ClientConn) OpenStream(opts qos.Options) (*StreamHandle, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.mu.Unlock()

	// Tenant class ceiling: a tenant may not claim a higher 802.1Qbv
	// class than declared for it — clamp and warn, mirroring the QoS
	// mapper's fallback idiom rather than failing the stream.
	if t := c.ten; t != nil && t.spec.MaxClass != 0 && opts.Class > t.spec.MaxClass {
		c.rt.warnf("stream: tenant %q requested class %d above its ceiling %d; clamping", t.name, opts.Class, t.spec.MaxClass)
		opts.Class = t.spec.MaxClass
	}

	tech, fellBack := qos.Map(opts, c.rt.EffectiveCaps())
	if fellBack {
		c.rt.warnf("stream: acceleration requested (%s) but no accelerated technology available; falling back to %s", opts, tech)
	}
	if _, ok := c.rt.techs[tech]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoDatapath, tech)
	}
	h := &StreamHandle{
		conn:     c,
		id:       c.rt.nextStreamID.Add(1),
		opts:     opts,
		tech:     tech,
		fellBack: fellBack,
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	c.streams[h.id] = h
	return h, nil
}

// Close tears the session down gracefully: pending emissions are flushed,
// all streams close, and any slot still borrowed by the session is
// reclaimed (the crash/migration backstop).
func (c *ClientConn) Close() error {
	c.flush(200 * time.Millisecond)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	streams := make([]*StreamHandle, 0, len(c.streams))
	for _, s := range c.streams {
		streams = append(streams, s)
	}
	c.streams = map[uint64]*StreamHandle{}
	c.mu.Unlock()

	for _, s := range streams {
		s.close(false)
	}
	c.rt.dropConn(c)
	return nil
}

// flush waits (bounded) until the session's TX rings are drained and
// every polling thread has completed two further passes, so emitted
// messages leave before the session's slots are reclaimed.
func (c *ClientConn) flush(timeout time.Duration) {
	if c.rt.stopped.Load() {
		return // no poller will ever drain; dropConn reclaims the lanes
	}
	deadline := timebase.Wall().Add(timeout)
	for timebase.Wall().Before(deadline) {
		c.mu.Lock()
		empty := true
		for _, l := range c.lanes {
			if l.queued() > 0 {
				empty = false
				break
			}
		}
		c.mu.Unlock()
		if empty {
			break
		}
		c.rt.kickTX()
		time.Sleep(20 * time.Microsecond)
	}
	c.rt.waitPollerPasses(2, deadline)
}

// StreamHandle is an open stream: a QoS contract mapped to a technology.
//
//insane:shared
type StreamHandle struct {
	conn     *ClientConn //insane:guardedby immutable after=OpenStream
	id       uint64      //insane:guardedby immutable after=OpenStream
	opts     qos.Options //insane:guardedby immutable after=OpenStream
	tech     model.Tech  //insane:guardedby immutable after=OpenStream
	fellBack bool        //insane:guardedby immutable after=OpenStream

	mu      sync.Mutex
	sources []*SourceHandle //insane:guardedby mu=mu
	sinks   []*SinkHandle   //insane:guardedby mu=mu
	closed  bool            //insane:guardedby mu=mu
}

// Tech returns the technology the QoS mapper chose for this stream.
func (h *StreamHandle) Tech() model.Tech { return h.tech }

// FellBack reports whether the mapper had to disregard the acceleration
// hint (the user-visible warning of §5.2).
func (h *StreamHandle) FellBack() bool { return h.fellBack }

// Options returns the stream's QoS options.
func (h *StreamHandle) Options() qos.Options { return h.opts }

// Close closes the stream and everything opened within it.
func (h *StreamHandle) Close() { h.close(true) }

func (h *StreamHandle) close(detach bool) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	sources := append([]*SourceHandle(nil), h.sources...)
	sinks := append([]*SinkHandle(nil), h.sinks...)
	h.sources, h.sinks = nil, nil
	h.mu.Unlock()

	for _, s := range sources {
		s.Close()
	}
	for _, k := range sinks {
		k.Close()
	}
	if detach {
		h.conn.mu.Lock()
		delete(h.conn.streams, h.id)
		h.conn.mu.Unlock()
	}
}

// CreateSource opens a data producer on a channel of this stream.
//
// A source is owned by one emitting goroutine at a time: interleaved
// Emits from several goroutines must be externally serialized (the same
// contract the paper's per-session queues assume, and what lets the
// runtime elect a wait-free SPSC TX lane for single-source sessions —
// open one source per goroutine instead of sharing one).
func (h *StreamHandle) CreateSource(channel uint32) (*SourceHandle, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	lane, err := h.conn.lane(h.tech)
	if err != nil {
		return nil, err
	}
	// If registering this source promoted the lane, wait for the polling
	// thread to drain the SPSC remnant before handing the source out:
	// push() holds producers back while the remnant is non-empty (to keep
	// per-producer FIFO across the promotion), and absorbing that window
	// here — a cold path — keeps it invisible to emitters. The loop is
	// counter-bounded so a stopping runtime cannot wedge us; on timeout
	// the first emits simply see ErrBusy, the normal backpressure signal.
	if lane.spsc != nil && !lane.single() {
		for i := 0; i < 2000 && lane.spsc.Len() > 0; i++ {
			time.Sleep(50 * time.Microsecond)
		}
	}
	s := &SourceHandle{
		stream:  h,
		channel: channel,
		lane:    lane,
		shard:   h.conn.rt.tel.AssignShard(),
		noTel:   h.opts.NoTelemetry,
		rtc:     h.opts.RunToCompletion,
		ten:     h.conn.ten,
	}
	if s.rtc && h.opts.Timing == qos.TimingSensitive {
		// Cache the stream technology's time-aware shaper so the RTC
		// admission check can test the 802.1Qbv gate lock-free.
		if st := h.conn.rt.techs[h.tech]; st != nil {
			s.gate = st.tas
		}
	}
	h.sources = append(h.sources, s)
	return s, nil
}

// CreateSink opens a data consumer on a channel of this stream and
// announces the subscription to the peer runtimes.
func (h *StreamHandle) CreateSink(channel uint32) (*SinkHandle, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrClosed
	}
	h.mu.Unlock()

	ring, err := ringbuf.NewMPMC[rxToken](rxRingDepth)
	if err != nil {
		return nil, err
	}
	k := &SinkHandle{
		stream:  h,
		channel: channel,
		ring:    ring,
		notify:  make(chan struct{}, 1),
		shard:   h.conn.rt.tel.AssignShard(),
		noTel:   h.opts.NoTelemetry,
		ten:     h.conn.ten,
	}
	if err := h.conn.rt.registerSink(k); err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		h.conn.rt.unregisterSink(k)
		return nil, ErrClosed
	}
	h.sinks = append(h.sinks, k)
	return k, nil
}

// Buffer is a zero-copy send buffer borrowed from the runtime memory
// manager (get_buffer). The application writes into Payload and must not
// touch it again after Emit (no after-write protection, §5.1).
type Buffer struct {
	// Slot identifies the backing memory slot.
	Slot mempool.SlotID
	// Payload is the writable application area of the slot.
	Payload []byte
	// VTime seeds the packet's virtual clock; an echo server copies the
	// request's VTime here so round-trip accounting accumulates.
	VTime timebase.VTime
	// Breakdown seeds the packet's stage accounting, like VTime.
	Breakdown fabric.Breakdown

	buf []byte
}

// Wrapper free lists: the Buffer and Delivery structs handed across the
// API are recycled once ownership returns to the runtime (successful
// Emit / Abort / Release). The ownership contract — enforced by the
// insanevet bufownership rule — already forbids touching a wrapper after
// those calls, which is exactly what makes pooling them safe.
var (
	bufferPool = sync.Pool{New: func() any { return new(Buffer) }}

	deliveryPool = sync.Pool{New: func() any { return new(Delivery) }}
)

// Outcome reports what happened to an emitted message
// (check_emit_outcome).
type Outcome struct {
	Seq uint32
	// LocalSinks and RemotePeers count the deliveries fanned out.
	LocalSinks  int
	RemotePeers int
	// Err is non-nil when the send failed.
	Err error
}

// outcomeWindow is how many past outcomes a source retains.
const outcomeWindow = 1024

// SourceHandle is a data producer on one channel (create_source).
//
//insane:shared
type SourceHandle struct {
	stream  *StreamHandle //insane:guardedby immutable after=CreateSource
	channel uint32        //insane:guardedby immutable after=CreateSource
	lane    *txLane       //insane:guardedby immutable after=CreateSource
	seq     atomic.Uint32 //insane:guardedby atomic
	closed  atomic.Bool   //insane:guardedby atomic
	// shard is the telemetry stripe Emit records into; assigned
	// round-robin at creation so concurrent publishers spread out.
	shard *telemetry.Shard //insane:guardedby immutable after=CreateSource
	noTel bool             //insane:guardedby immutable after=CreateSource
	// rtc opts Emit into the run-to-completion fast path (DESIGN.md §11).
	rtc bool //insane:guardedby immutable after=CreateSource
	// ten caches the session's tenant binding (nil = default tenant) so
	// the Emit/GetBuffer quota checks skip a pointer chase.
	ten *tenant //insane:guardedby immutable after=CreateSource
	// gate is the stream technology's 802.1Qbv shaper, cached only for
	// RTC time-sensitive sources so the admission check is one immutable
	// read, no scheduler lock.
	gate *sched.TAS //insane:guardedby immutable after=CreateSource

	mu       sync.Mutex
	outcomes [outcomeWindow]Outcome //insane:guardedby mu=mu
	haveOut  [outcomeWindow]bool    //insane:guardedby mu=mu
}

// Channel returns the source's channel id.
func (s *SourceHandle) Channel() uint32 { return s.channel }

// GetBuffer borrows a zero-copy buffer able to hold size payload bytes,
// charged against the session tenant's slot budget (mempool.ErrQuota
// when the tenant is at its cap; the public layer maps it to
// ErrTenantQuota).
//
//insane:hotpath
//insane:acquire resource=mem-slot on=nilerr
func (s *SourceHandle) GetBuffer(size int) (*Buffer, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	var budget *mempool.Budget
	if s.ten != nil {
		budget = s.ten.budget
	}
	slot, buf, err := s.stream.conn.rt.mm.GetBudget(MsgHeadroom+size, s.stream.conn.id, budget)
	if err != nil {
		if s.ten != nil && errors.Is(err, mempool.ErrQuota) {
			s.ten.shard.Inc(telemetry.CtrTenantQuotaRejects)
			s.shard.Inc(telemetry.CtrTenantQuotaRejects)
		}
		return nil, err
	}
	b := bufferPool.Get().(*Buffer)
	*b = Buffer{
		Slot:    slot,
		Payload: buf[MsgHeadroom : MsgHeadroom+size],
		buf:     buf,
	}
	return b, nil
}

// Abort returns an unsent buffer to the pool.
//
//insane:hotpath
//insane:release resource=mem-slot
func (s *SourceHandle) Abort(b *Buffer) {
	if b != nil && b.buf != nil {
		_ = s.stream.conn.rt.mm.Release(b.Slot)
		*b = Buffer{}
		bufferPool.Put(b)
	}
}

// Emit hands n payload bytes of the buffer to the runtime for
// transmission (emit_data) and returns the sequence number usable with
// Outcome. Ownership of the buffer passes to the runtime; on
// ErrBackpressure the caller keeps it and may retry.
//
//insane:hotpath
//insane:transfer resource=mem-slot on=nilerr
func (s *SourceHandle) Emit(b *Buffer, n int) (uint32, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if n < 0 || n > len(b.Payload) {
		return 0, ErrEmitRange
	}
	seq := s.seq.Add(1)
	if s.rtc {
		if s.emitRTC(b, n, seq) {
			return seq, nil
		}
		// A precondition failed (remote subscriber, fanout over budget,
		// closed TSN gate, or a full sink ring): queued path below.
		s.shard.Inc(telemetry.CtrRTCFallbacks)
	}
	st := s.stream
	// Tenant admission: the queued path holds a TX token from here until
	// the poller dispatches (or drops) the message; a tenant at its
	// in-flight cap is rejected before touching the ring. RTC deliveries
	// above never queue, so they bypass the token quota by design.
	if ten := s.ten; ten != nil && !ten.chargeTX() {
		ten.shard.Inc(telemetry.CtrTenantQuotaRejects)
		s.shard.Inc(telemetry.CtrTenantQuotaRejects)
		return 0, ErrTenantQuota
	}
	encodeHeader(b.buf[headroomOffset:], header{
		kind:    kindData,
		channel: s.channel,
		class:   st.opts.Class,
		seq:     seq,
	})
	tok := txToken{
		slot:    b.Slot,
		msgLen:  HeaderLen + n,
		channel: s.channel,
		class:   st.opts.Class,
		timing:  st.opts.Timing,
		seq:     seq,
		src:     s,
		vtime:   b.VTime,
		bd:      b.Breakdown,
		ten:     s.ten,
		noTel:   s.noTel,
	}
	// The IPC hop: the token crosses the client→runtime ring.
	ipc := s.stream.conn.rt.rc.IPCTx
	d := s.stream.conn.rt.tb.Scale(ipc.Class, ipc.Fixed+ipc.Amort)
	tok.vtime = tok.vtime.Add(d)
	tok.bd.Send += d
	if !s.lane.push(tok) {
		// Backpressure: the caller keeps buffer ownership and may retry.
		if ten := s.ten; ten != nil {
			ten.unchargeTX()
			ten.shard.Inc(telemetry.CtrEmitBackpressure)
		}
		s.shard.Inc(telemetry.CtrEmitBackpressure)
		return 0, ErrBackpressure
	}
	// Ownership of the slot moved to the runtime; the wrapper is dead to
	// the caller (bufownership rule) and can be recycled immediately.
	*b = Buffer{}
	bufferPool.Put(b)
	s.shard.Inc(telemetry.CtrEmits)
	s.shard.Add(telemetry.CtrEmitBytes, uint64(n))
	if ten := s.ten; ten != nil {
		ten.shard.Inc(telemetry.CtrEmits)
		ten.shard.Add(telemetry.CtrEmitBytes, uint64(n))
	}
	s.stream.conn.rt.kickTX()
	return seq, nil
}

// headroomOffset is where the INSANE header starts inside a slot.
const headroomOffset = MsgHeadroom - HeaderLen

// recordOutcome stores the fate of an emitted message.
func (s *SourceHandle) recordOutcome(o Outcome) {
	//lint:ignore insanevet/hotpathcheck outcome-window lock; bounded array write, never held across I/O
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := int(o.Seq) % outcomeWindow
	s.outcomes[idx] = o
	s.haveOut[idx] = true
}

// Outcome retrieves the result of a past Emit, if still retained
// (check_emit_outcome).
func (s *SourceHandle) Outcome(seq uint32) (Outcome, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := int(seq) % outcomeWindow
	if !s.haveOut[idx] || s.outcomes[idx].Seq != seq {
		return Outcome{}, false
	}
	return s.outcomes[idx], true
}

// Close closes the source (close_source).
func (s *SourceHandle) Close() { s.closed.Store(true) }

// Delivery is one received message, borrowed zero-copy from the runtime
// pools: release it as soon as processing ends (release_buffer).
type Delivery struct {
	Slot    mempool.SlotID
	Payload []byte
	Channel uint32
	// VTime is the accumulated one-way virtual latency of the message.
	VTime timebase.VTime
	// Breakdown splits VTime by Fig. 6 stage.
	Breakdown fabric.Breakdown
}

// SinkHandle is a data consumer on one channel (create_sink).
//
//insane:shared
type SinkHandle struct {
	stream  *StreamHandle          //insane:guardedby immutable after=CreateSink
	channel uint32                 //insane:guardedby immutable after=CreateSink
	ring    *ringbuf.MPMC[rxToken] //insane:guardedby immutable after=CreateSink
	notify  chan struct{}          //insane:guardedby immutable after=CreateSink
	closed  atomic.Bool            //insane:guardedby atomic
	// shard is the telemetry stripe Consume records into.
	shard *telemetry.Shard //insane:guardedby immutable after=CreateSink
	noTel bool             //insane:guardedby immutable after=CreateSink
	// ten is the consuming session's tenant (nil = default): Consume
	// mirrors its counters and latency histogram into the tenant domain.
	ten *tenant //insane:guardedby immutable after=CreateSink
}

// Channel returns the sink's channel id.
func (k *SinkHandle) Channel() uint32 { return k.channel }

// Notify returns a channel signaled when new data may be available; used
// by the client library to run callbacks and blocking consumes without
// spinning.
func (k *SinkHandle) Notify() <-chan struct{} { return k.notify }

// Available returns the number of queued deliveries (data_available).
func (k *SinkHandle) Available() int { return k.ring.Len() }

// TryConsume pops one delivery without blocking (consume_data with the
// non-blocking flag).
//
//insane:hotpath
//insane:acquire resource=mem-slot on=nilerr
func (k *SinkHandle) TryConsume() (*Delivery, error) {
	if k.closed.Load() {
		return nil, ErrClosed
	}
	tok, ok := k.ring.TryPop()
	if !ok {
		return nil, ErrNoData
	}
	d := deliveryPool.Get().(*Delivery)
	*d = Delivery{
		Slot:      tok.slot,
		Payload:   tok.buf[tok.off : tok.off+tok.length],
		Channel:   tok.channel,
		VTime:     tok.vtime,
		Breakdown: tok.bd,
	}
	k.shard.Inc(telemetry.CtrConsumes)
	k.shard.Add(telemetry.CtrConsumeBytes, uint64(tok.length))
	if ten := k.ten; ten != nil {
		ten.shard.Inc(telemetry.CtrConsumes)
		ten.shard.Add(telemetry.CtrConsumeBytes, uint64(tok.length))
	}
	if !k.noTel {
		k.shard.Observe(telemetry.HistConsumeLatency, int64(tok.vtime))
		k.shard.Observe(telemetry.HistStageSend, int64(tok.bd.Send))
		k.shard.Observe(telemetry.HistStageNetwork, int64(tok.bd.Network))
		k.shard.Observe(telemetry.HistStageRecv, int64(tok.bd.Recv))
		k.shard.Observe(telemetry.HistStageProcessing, int64(tok.bd.Processing))
		if ten := k.ten; ten != nil {
			ten.shard.Observe(telemetry.HistConsumeLatency, int64(tok.vtime))
		}
	}
	return d, nil
}

// timerPool recycles the deadline timers of blocking Consumes, so a
// request/reply loop does not allocate a timer (plus its channel) per
// message.
var timerPool sync.Pool

// getTimer returns a timer firing after d.
//
//insane:acquire resource=timer
func getTimer(d time.Duration) *time.Timer {
	if t, ok := timerPool.Get().(*time.Timer); ok {
		t.Reset(d)
		return t
	}
	//lint:ignore insanevet/hotpathcheck timer-pool miss; steady state reuses parked timers
	return time.NewTimer(d)
}

// putTimer parks a timer, draining a pending fire so the next Reset
// starts clean.
//
//insane:release resource=timer
func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// Consume blocks until a delivery arrives or the timeout elapses
// (consume_data with the blocking flag). A zero timeout waits forever.
//
//insane:hotpath allow=block
//insane:acquire resource=mem-slot on=nilerr
func (k *SinkHandle) Consume(timeout time.Duration) (*Delivery, error) {
	return k.ConsumeCancel(nil, timeout)
}

// ConsumeCancel is Consume with an additional cancellation channel: it
// returns ErrCanceled as soon as cancel is closed. A nil cancel channel
// never fires; a zero timeout waits forever. The public layer builds
// context-aware consumption on top of this primitive without forcing a
// context (and its allocations) onto the timeout-only path.
//
//insane:hotpath allow=block
//insane:acquire resource=mem-slot on=nilerr
func (k *SinkHandle) ConsumeCancel(cancel <-chan struct{}, timeout time.Duration) (*Delivery, error) {
	// Fast path: data is already queued — no timer needed.
	d, err := k.TryConsume()
	if err == nil || !errors.Is(err, ErrNoData) {
		return d, err
	}
	var deadline <-chan time.Time
	if timeout > 0 {
		t := getTimer(timeout)
		defer putTimer(t)
		deadline = t.C
	}
	//insane:bounded by=blocking-consume wait: exits on data, deadline, or cancellation, not per-packet work
	for {
		d, err := k.TryConsume()
		if err == nil {
			return d, nil
		}
		if !errors.Is(err, ErrNoData) {
			return nil, err
		}
		select {
		case <-k.notify:
		case <-deadline:
			return nil, ErrTimeout
		case <-cancel:
			return nil, ErrCanceled
		}
	}
}

// Release returns a consumed delivery's memory to the pool
// (release_buffer).
//
//insane:hotpath
//insane:release resource=mem-slot
func (k *SinkHandle) Release(d *Delivery) {
	if d == nil || d.Payload == nil {
		return // nil or already-released delivery
	}
	_ = k.stream.conn.rt.mm.Release(d.Slot)
	*d = Delivery{}
	deliveryPool.Put(d)
}

// Close closes the sink, withdrawing its subscription (close_sink).
func (k *SinkHandle) Close() {
	if k.closed.CompareAndSwap(false, true) {
		k.stream.conn.rt.unregisterSink(k)
		// Drain anything still queued so slots return to the pool.
		for {
			tok, ok := k.ring.TryPop()
			if !ok {
				break
			}
			_ = k.stream.conn.rt.mm.Release(tok.slot)
		}
	}
}

// wake signals the sink's notify channel without blocking.
func (k *SinkHandle) wake() {
	select {
	case k.notify <- struct{}{}:
	default:
	}
}
