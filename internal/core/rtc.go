// Run-to-completion fast path (DESIGN.md §11): an Emit on an opted-in
// stream whose fanout is purely local delivers straight into the sink RX
// rings on the emitting goroutine — no TX lane push, no scheduler dwell,
// no poller wakeup. The paper's DP-class semantics permit this for
// latency-class flows; the preconditions below are exactly the cases
// where the queued path's machinery adds ordering or flow-control value
// the fast path cannot replicate, so failing any of them falls back.

package core

import (
	"github.com/insane-mw/insane/internal/telemetry"
)

// RTCMaxFanout is the largest local fanout the run-to-completion path
// will deliver synchronously. Beyond it, the emitting goroutine would be
// doing the poller's batched work without its amortization, so Emit
// falls back to the queued path and lets dispatch fan out.
const RTCMaxFanout = 4

// emitRTC attempts the run-to-completion delivery of one emitted buffer
// and reports whether it committed. On false, nothing happened: the
// caller still owns the buffer and must take the queued path.
//
// Preconditions (fallback when any fails):
//   - no remote peer subscribed to the channel (remote sends need the
//     poller's endpoint serialization and per-peer framing);
//   - at least one and at most RTCMaxFanout local sinks;
//   - for time-sensitive streams, the 802.1Qbv gate of the stream's
//     class is open right now (a closed gate means the packet must wait,
//     which is the TAS queue's job);
//   - no sink ring is full (the queued path is where backpressure
//     and drop accounting live; checking up front also makes the
//     fallback deterministic for tests).
//
//insane:hotpath
func (s *SourceHandle) emitRTC(b *Buffer, n int, seq uint32) bool {
	rt := s.stream.conn.rt
	if len(rt.subs.subscribers(s.channel)) != 0 {
		return false
	}
	sinks := rt.sinksFor(s.channel)
	if len(sinks) == 0 || len(sinks) > RTCMaxFanout {
		return false
	}
	if s.gate != nil && !s.gate.GateOpenAt(s.stream.opts.Class, rt.clock.Now()) {
		return false
	}
	//insane:bounded by=fanout capped at RTCMaxFanout by the admission check above
	for _, k := range sinks {
		if k.ring.Len() >= k.ring.Cap() {
			return false
		}
	}

	// Commit. The RTC hop replaces the queued path's IPC+scheduler
	// charges; per-sink delivery cost is charged exactly like
	// deliverLocal. The header is never encoded — the rxToken carries
	// the payload view directly, as deliverLocal's tokens do.
	hop := rt.tb.Scale(rt.rc.RTCDeliver.Class, rt.rc.RTCDeliver.Fixed+rt.rc.RTCDeliver.Amort)
	vt := b.VTime.Add(hop)
	bd := b.Breakdown
	bd.Send += hop

	_ = rt.mm.AddRef(b.Slot, len(sinks))
	//insane:bounded by=fanout capped at RTCMaxFanout by the admission check above
	for i, k := range sinks {
		tok := rxToken{
			slot:    b.Slot,
			buf:     b.buf,
			off:     MsgHeadroom,
			length:  n,
			channel: s.channel,
			vtime:   vt,
			bd:      bd,
		}
		d := rt.deliveryCost(i)
		tok.vtime = tok.vtime.Add(d)
		tok.bd.Recv += d
		if !k.ring.TryPush(tok) {
			// A consumer-side race filled the ring after the advisory
			// check: drop this delivery exactly like deliverLocal would.
			_ = rt.mm.Release(b.Slot)
			s.shard.Inc(telemetry.CtrRingFullDrops)
			continue
		}
		s.shard.Inc(telemetry.CtrLocalDeliveries)
		s.shard.Inc(telemetry.CtrRTCDeliveries)
		if !s.noTel {
			s.shard.Observe(telemetry.HistDeliverLatency, int64(d))
			s.shard.Observe(telemetry.HistRTCDeliver, int64(hop+d))
		}
		k.wake()
	}
	_ = rt.mm.Release(b.Slot)

	s.recordOutcome(Outcome{Seq: seq, LocalSinks: len(sinks)})
	s.shard.Inc(telemetry.CtrEmits)
	s.shard.Add(telemetry.CtrEmitBytes, uint64(n))
	// RTC deliveries never queue, so they bypass the TX token quota, but
	// the tenant's emit counters must still see them.
	if ten := s.ten; ten != nil {
		ten.shard.Inc(telemetry.CtrEmits)
		ten.shard.Add(telemetry.CtrEmitBytes, uint64(n))
	}
	// Ownership of the slot moved to the sinks; recycle the dead wrapper
	// (same contract as the queued Emit).
	*b = Buffer{}
	bufferPool.Put(b)
	return true
}
