package core

import (
	"runtime"
	"time"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/netstack"
	"github.com/insane-mw/insane/internal/qos"
	"github.com/insane-mw/insane/internal/ringbuf"
	"github.com/insane-mw/insane/internal/telemetry"
	"github.com/insane-mw/insane/internal/timebase"
)

// Idle pacing: pollers back off exponentially when no work shows up and
// are woken by Emit kicks ("threads are automatically paused when idle",
// §5.3).
const (
	idleSleepMin = 2 * time.Microsecond
	idleSleepMax = 200 * time.Microsecond
)

// gateSpinHorizon bounds the busy-wait a poller runs up to the next
// 802.1Qbv gate opening. Go timers on a parked process fire with
// roughly millisecond slop — far wider than a 50µs gate window — so a
// timer-paced poller misses open windows whole cycles at a time and a
// quiet TSN tenant's tail collapses to milliseconds. Inside this horizon
// the poller yields instead of sleeping, hitting the gate edge with
// scheduler-quantum precision; waits beyond it (parked packets behind a
// long-closed gate) still sleep and leave the CPU alone.
const gateSpinHorizon = time.Millisecond

// outMeta rides along an outgoing packet to report its fate back to the
// emitting source.
type outMeta struct {
	src     *SourceHandle
	seq     uint32
	channel uint32
	timing  qos.Timing
	// enqVT is the scheduler-enqueue timestamp on the runtime clock;
	// dispatch turns it into the scheduler-dwell histogram sample.
	enqVT timebase.VTime
	// ten is the emitting session's tenant (nil = default): dispatch
	// uncharges the in-flight TX token against it.
	ten *tenant
	// noTel opts the packet out of the latency histograms (stream-level
	// WithTelemetry(false); counters still run).
	noTel bool
}

// pktEnv is the pooled envelope of an outgoing packet: the datapath
// packet and its metadata travel together so one free-list recycle
// covers both (the DPDK mbuf idiom — metadata lives in the buffer
// descriptor, not in a companion allocation). The packet's Ctx points
// back at the envelope so dispatch can recycle it.
type pktEnv struct {
	pkt  datapath.Packet
	meta outMeta
}

// pollLoop is the body of one polling thread.
//
//insane:hotpath allow=block
func (r *Runtime) pollLoop(p *poller) {
	defer r.wg.Done()
	backoff := idleSleepMin
	// One reusable timer for idle pacing; time.After would allocate a
	// timer (and a channel) per idle iteration.
	//lint:ignore insanevet/hotpathcheck one-time timer allocation at poller startup
	timer := time.NewTimer(idleSleepMax)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	//insane:bounded by=poller event loop: lives for the runtime, each iteration is one bounded pass
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		p.loops.Add(1)
		work := 0
		gated := false
		var nextGate timebase.VTime
		//insane:bounded by=one entry per registered technology, fixed at runtime construction
		for i, st := range p.states {
			work += r.drainTX(p, &p.snaps[i], st)
			work += r.pollRX(p, st)
			st.schedMu.Lock()
			if st.tas.Pending() > 0 || st.wdrr.Pending() > 0 {
				gated = true
				// Earliest gate opening across both schedulers; zero
				// means something queued is already eligible.
				gateNow := r.clock.Now()
				if e := st.tas.NextEvent(gateNow); e != 0 && (nextGate == 0 || e.Before(nextGate)) {
					nextGate = e
				}
				if e := st.wdrr.NextEvent(gateNow); e != 0 && (nextGate == 0 || e.Before(nextGate)) {
					nextGate = e
				}
			}
			st.schedMu.Unlock()
		}
		if work > 0 {
			backoff = idleSleepMin
			continue
		}
		sleep := backoff
		if gated {
			// Time-sensitive packets are waiting for their 802.1Qbv gate.
			// Timer wakeups are too coarse to hit a gate window reliably:
			// spin to a near edge, sleep toward a far one.
			backoff = idleSleepMin
			wait := time.Duration(0)
			if nextGate != 0 {
				wait = nextGate.Sub(r.clock.Now())
			}
			if wait <= gateSpinHorizon {
				runtime.Gosched()
				continue
			}
			sleep = wait - gateSpinHorizon
		}
		timer.Reset(sleep)
		select {
		case <-p.stop:
			return
		case <-p.kick:
			// Drain the still-armed timer so the next Reset starts clean.
			if !timer.Stop() {
				<-timer.C
			}
			backoff = idleSleepMin
		case <-timer.C:
			backoff *= 2
			if backoff > idleSleepMax {
				backoff = idleSleepMax
			}
		}
	}
}

// laneView is a poller's immutable view of one TX lane's rings. Both
// pointers are captured under the owning conn's mu; a promotion bumps the
// topology epoch, so a view missing the new MPMC ring survives at most
// one pass. The SPSC ring is always drained before the MPMC ring — that,
// plus the producer-side remnant hold-back in txLane.push, preserves
// per-producer FIFO order across a promotion.
type laneView struct {
	spsc *ringbuf.SPSC[txToken]
	mpmc *ringbuf.MPMC[txToken]
}

// queued returns the view's buffered token count (occupancy sampling).
func (v *laneView) queued() int {
	n := 0
	if v.spsc != nil {
		n += v.spsc.Len()
	}
	if v.mpmc != nil {
		n += v.mpmc.Len()
	}
	return n
}

// txSnap is a poller's cached view of the TX lanes feeding one
// technology. The lane set only changes when a session connects,
// disconnects, lazily creates a lane, or a lane is promoted to MPMC, so
// the poller rebuilds it only when the runtime's topology epoch moves —
// the steady-state drain pass touches no locks and no maps (RCU-style
// read path, §5.3).
type txSnap struct {
	epoch uint64
	lanes []laneView
}

// refreshTxSnap rebuilds a poller's lane snapshot for one technology if
// the conn topology changed since it was taken. The epoch is loaded
// before the tables are read: a concurrent mutation either lands in this
// rebuild or bumps the epoch past the one recorded here, forcing another
// rebuild on the next pass.
func (r *Runtime) refreshTxSnap(s *txSnap, tech model.Tech) {
	epoch := r.topoEpoch.Load()
	if epoch == s.epoch {
		return
	}
	r.mu.RLock()
	conns := r.connList
	r.mu.RUnlock()
	s.lanes = s.lanes[:0]
	//insane:bounded by=topology-epoch rebuild: one entry per live client connection, off the steady-state path
	for _, c := range conns {
		c.mu.Lock()
		l := c.lanes[tech]
		var view laneView
		if l != nil {
			// Capture both ring pointers under c.mu: promotion writes
			// l.mpmc under the same lock.
			view = laneView{spsc: l.spsc, mpmc: l.mpmc}
		}
		c.mu.Unlock()
		if l != nil {
			//lint:ignore insanevet/hotpathcheck topology-epoch rebuild; the steady-state drain pass never reaches this
			s.lanes = append(s.lanes, view)
		}
	}
	s.epoch = epoch
}

// drainTX moves tokens from the session rings through the scheduler and
// out of the datapath. Returns the number of packets processed.
func (r *Runtime) drainTX(p *poller, snap *txSnap, st *techState) int {
	// 1. Pull tokens from every session's ring for this technology, in
	// bursts: one sequence-aware batch pop per ring visit instead of one
	// CAS per token (opportunistic batching, §6.2). The clock is read
	// once per pass: it stamps the scheduler-enqueue time of every token
	// pulled below (dwell accounting) and gates the dequeue.
	r.refreshTxSnap(snap, st.tech)
	now := r.clock.Now()
	pulled := 0
	//insane:bounded by=one lane per live session in the epoch snapshot
	for li := range snap.lanes {
		lv := &snap.lanes[li]
		// Lane occupancy, sampled before the drain: queue-depth visibility
		// for the exporter without a per-token cost. Empty lanes are not
		// recorded — an idle poller would otherwise bury the distribution
		// under zeros.
		if occ := lv.queued(); occ > 0 {
			p.shard.Observe(telemetry.HistTxRingOccupancy, int64(occ))
		}
		// SPSC ring first (the pre-promotion remnant precedes any MPMC
		// tokens from the same producer), then the MPMC ring.
		if lv.spsc != nil {
			//insane:bounded by=pulled strictly increases per iteration and r.burst <= model.MaxBurst
			for pulled < r.burst {
				want := r.burst - pulled
				if want > len(p.toks) {
					want = len(p.toks)
				}
				n := lv.spsc.PopBatch(p.toks[:want])
				if n == 0 {
					break
				}
				//insane:bounded by=n <= len(p.toks), the per-poller burst buffer (<= model.MaxBurst)
				for i := 0; i < n; i++ {
					r.enqueueToken(p, st, p.toks[i], now)
				}
				pulled += n
			}
		}
		if lv.mpmc != nil {
			//insane:bounded by=pulled strictly increases per iteration and r.burst <= model.MaxBurst
			for pulled < r.burst {
				want := r.burst - pulled
				if want > len(p.toks) {
					want = len(p.toks)
				}
				n := lv.mpmc.PopBatch(p.toks[:want])
				if n == 0 {
					break
				}
				//insane:bounded by=n <= len(p.toks), the per-poller burst buffer (<= model.MaxBurst)
				for i := 0; i < n; i++ {
					r.enqueueToken(p, st, p.toks[i], now)
				}
				pulled += n
			}
		}
	}

	// 2. Dequeue what the schedulers release at the current time. The
	// time-aware shaper goes first: its packets carry the hard timing
	// contract, so a burst never fills up with best-effort traffic while
	// a gate-open TSN packet waits.
	batch := p.batch
	st.schedMu.Lock()
	n := st.tas.Dequeue(batch, now)
	n += st.wdrr.Dequeue(batch[n:], now)
	st.schedMu.Unlock()
	if n == 0 {
		return pulled
	}
	p.shard.Observe(telemetry.HistDispatchBatch, int64(n))

	// 3. Dispatch the released packets.
	r.dispatch(p, st, batch[:n], now)
	return pulled + n
}

// enqueueToken converts a TX token into a packet and files it with the
// stream's scheduler, charging the scheduling cost. The packet envelope
// comes from the poller's free list: ownership passes to the scheduler
// and returns to a poller cache when dispatch recycles it. now is the
// pass's clock reading; it stamps the dwell accounting and the TAS
// arrival time.
func (r *Runtime) enqueueToken(p *poller, st *techState, tok txToken, now timebase.VTime) {
	buf, err := r.mm.Buf(tok.slot)
	if err != nil {
		// The session died between Emit and drain; nothing to send. The
		// tenant's TX token is done traveling either way.
		if tok.ten != nil {
			tok.ten.unchargeTX()
		}
		tok.src.recordOutcome(Outcome{Seq: tok.seq, Err: err})
		return
	}
	var tenIdx uint16
	if tok.ten != nil {
		tenIdx = uint16(tok.ten.index)
	}
	env := p.envs.Get()
	env.pkt = datapath.Packet{
		Slot:      tok.slot,
		Buf:       buf,
		Off:       headroomOffset,
		Len:       tok.msgLen,
		Class:     tok.class,
		Tenant:    tenIdx,
		Src:       st.local,
		VTime:     tok.vtime,
		Breakdown: tok.bd,
		Ctx:       env,
	}
	env.meta = outMeta{
		src: tok.src, seq: tok.seq, channel: tok.channel, timing: tok.timing,
		enqVT: now, ten: tok.ten, noTel: tok.noTel,
	}
	env.pkt.Charge(r.rc.Sched, tok.msgLen, 1, r.tb)
	p.shard.Inc(telemetry.CtrSchedEnqueues)
	st.schedMu.Lock()
	if tok.timing == qos.TimingSensitive {
		st.tas.Enqueue(&env.pkt, now)
	} else {
		st.wdrr.Enqueue(&env.pkt, now)
	}
	st.schedMu.Unlock()
}

// dispatch fans a batch of packets out to local sinks and remote peers,
// records outcomes, and recycles the slots and packet envelopes. now is
// the pass's clock reading, used to close the scheduler-dwell interval
// opened by enqueueToken.
func (r *Runtime) dispatch(p *poller, st *techState, batch []*datapath.Packet, now timebase.VTime) {
	//insane:bounded by=batch is the poller's dequeue buffer, sized to burst <= model.MaxBurst
	for _, pkt := range batch {
		env, ok := pkt.Ctx.(*pktEnv)
		if !ok {
			_ = r.mm.Release(pkt.Slot)
			continue
		}
		meta := &env.meta
		p.shard.Inc(telemetry.CtrDispatches)
		if !meta.noTel {
			p.shard.Observe(telemetry.HistSchedDwell, int64(now.Sub(meta.enqVT)))
		}

		// Local sinks first: co-located source/sink pairs communicate
		// through shared memory directly (§5.1). The snapshot slice is
		// shared and read-only.
		sinks := r.sinksFor(meta.channel)
		if len(sinks) > 0 {
			_ = r.mm.AddRef(pkt.Slot, len(sinks))
			r.deliverLocal(p, pkt, meta.channel, sinks, meta.noTel)
		}

		// Remote peers that subscribed to the channel.
		subs := r.subs.subscribers(meta.channel)
		sent := 0
		var sendErr error
		//insane:bounded by=one entry per subscribed peer, fixed by the cluster configuration
		for _, sub := range subs {
			if err := r.sendToPeer(p, st, pkt, sub); err != nil {
				sendErr = err
				continue
			}
			sent++
		}
		meta.src.recordOutcome(Outcome{
			Seq:         meta.seq,
			LocalSinks:  len(sinks),
			RemotePeers: sent,
			Err:         sendErr,
		})
		if sent > 0 {
			p.shard.Add(telemetry.CtrTxMessages, uint64(sent))
		}
		// The message left the scheduler: its in-flight TX token returns
		// to the emitting tenant.
		if meta.ten != nil {
			meta.ten.unchargeTX()
		}
		_ = r.mm.Release(pkt.Slot)
		env.pkt.Buf = nil
		env.pkt.Ctx = nil
		p.envs.Put(env)
	}
}

// sendToPeer transmits one packet to one subscribed peer, choosing the
// technology plane: the stream's own technology when the peer has it,
// otherwise the technology the peer asked for in its subscription,
// otherwise the kernel plane (counted as a downgrade).
func (r *Runtime) sendToPeer(p *poller, st *techState, pkt *datapath.Packet, sub remoteSub) error {
	target := st
	if _, ok := sub.peer.Addrs[st.tech]; !ok {
		// The peer cannot receive on this plane: honor its subscription
		// technology if we have it, else fall back to kernel.
		alt, ok := r.techs[sub.tech]
		if !ok {
			alt = r.techs[model.TechKernelUDP]
		}
		if _, ok := sub.peer.Addrs[alt.tech]; !ok {
			alt = r.techs[model.TechKernelUDP]
		}
		target = alt
		p.shard.Inc(telemetry.CtrTechDowngrades)
	}
	ip, ok := sub.peer.Addrs[target.tech]
	if !ok {
		return errPeerUnreachable(sub.peer.Name)
	}
	dst := netstack.Endpoint{IP: ip, Port: TechPort(target.tech)}

	// Per-peer packet copy: charges and framing are destination-specific
	// while the slot bytes are shared (the wire copies on Transmit). The
	// copy lives in the poller's scratch, not on the heap: every plugin
	// Send is synchronous and the fabric copies frame bytes, so the
	// scratch is free again when Send returns.
	out := &p.sendPkt
	*out = *pkt
	out.Ctx = nil

	if target.info.NeedsUserStack {
		// Packet processing engine: frame in place using the slot
		// headroom (§5.3).
		out.Charge(r.rc.NetstackTx, out.Len, 1, r.tb)
		dstMAC, err := r.cfg.Resolver.Resolve(dst.IP)
		if err != nil {
			return err
		}
		frameLen, err := netstack.EncodeUDP(out.Buf, netstack.FrameMeta{
			SrcMAC:       r.portMAC(target),
			DstMAC:       dstMAC,
			Src:          target.local,
			Dst:          dst,
			TrafficClass: out.Class,
		}, out.Len, r.portMTU(target))
		if err != nil {
			return err
		}
		out.Off = 0
		out.Len = frameLen
		out.Framed = true
	}

	p.sendVec[0] = out
	target.mu.Lock()
	defer target.mu.Unlock()
	_, err := target.ep.Send(p.sendVec[:], dst)
	return err
}

// deliverLocal pushes a packet's slot to co-located sinks via shared
// memory (one reference each).
func (r *Runtime) deliverLocal(p *poller, pkt *datapath.Packet, channel uint32, sinks []*SinkHandle, noTel bool) {
	payloadOff := pkt.Off + HeaderLen
	payloadLen := pkt.Len - HeaderLen
	//insane:bounded by=one entry per sink registered on the channel, fixed by the application
	for i, k := range sinks {
		tok := rxToken{
			slot:    pkt.Slot,
			buf:     pkt.Buf,
			off:     payloadOff,
			length:  payloadLen,
			channel: channel,
			vtime:   pkt.VTime,
			bd:      pkt.Breakdown,
		}
		// Delivery cost, plus the per-extra-sink cache effect (Fig. 8b).
		d := r.deliveryCost(i)
		tok.vtime = tok.vtime.Add(d)
		tok.bd.Recv += d
		if !k.ring.TryPush(tok) {
			_ = r.mm.Release(pkt.Slot)
			p.shard.Inc(telemetry.CtrRingFullDrops)
			if k.ten != nil {
				k.ten.shard.Inc(telemetry.CtrRingFullDrops)
			}
			continue
		}
		p.shard.Inc(telemetry.CtrLocalDeliveries)
		if !noTel {
			p.shard.Observe(telemetry.HistDeliverLatency, int64(d))
		}
		k.wake()
	}
}

// deliveryCost returns the charged cost of delivering to the i-th sink of
// a packet's fanout.
func (r *Runtime) deliveryCost(i int) time.Duration {
	d := r.tb.Scale(r.rc.Deliver.Class, r.rc.Deliver.Fixed+r.rc.Deliver.Amort)
	if i > 0 {
		extra := r.rc.PerExtraSinkNs
		if r.rc.SinkCacheKnee > 0 && i >= r.rc.SinkCacheKnee {
			extra = r.rc.PerExtraSinkSpillNs
		}
		d += r.tb.Scale(model.ScaleRuntime, time.Duration(extra))
	}
	return d
}

// pollRX drains one technology's receive path: poll the plugin, run the
// packet processing engine where needed, handle control messages, and
// dispatch data to local sinks.
func (r *Runtime) pollRX(p *poller, st *techState) int {
	st.mu.Lock()
	pkts, err := st.ep.Poll(r.burst)
	st.mu.Unlock()
	if err != nil || len(pkts) == 0 {
		return 0
	}
	//insane:bounded by=the datapath returns at most one burst of packets per Receive
	for _, pkt := range pkts {
		r.receiveOne(p, st, pkt)
	}
	return len(pkts)
}

// receiveOne processes one inbound packet.
func (r *Runtime) receiveOne(p *poller, st *techState, pkt *datapath.Packet) {
	if pkt.Framed {
		// Packet processing engine, receive side.
		pkt.Charge(r.rc.NetstackRx, pkt.Len, 1, r.tb)
		meta, payload, err := netstack.DecodeUDP(pkt.Bytes())
		if err != nil || meta.Dst.Port != st.local.Port {
			_ = r.mm.Release(pkt.Slot)
			return
		}
		pkt.Src, pkt.Dst = meta.Src, meta.Dst
		pkt.Off += netstack.HeadersLen
		pkt.Len = len(payload)
		pkt.Framed = false
	}

	h, err := decodeHeader(pkt.Bytes())
	if err != nil {
		_ = r.mm.Release(pkt.Slot)
		return
	}

	switch h.kind {
	case kindSub, kindUnsub:
		r.handleControl(h, pkt.Src.IP)
		_ = r.mm.Release(pkt.Slot)
		return
	case kindData:
		// fallthrough below
	}
	p.shard.Inc(telemetry.CtrRxMessages)
	// DMA/PCIe byte-touch cost of the runtime receive path.
	touch := r.tb.Scale(model.ScaleRuntime, time.Duration(r.rc.RxDMATouchNs*float64(pkt.Len)))
	pkt.VTime = pkt.VTime.Add(touch)
	pkt.Breakdown.Recv += touch

	sinks := r.sinksFor(h.channel)
	if len(sinks) == 0 {
		p.shard.Inc(telemetry.CtrNoSinkDrops)
		_ = r.mm.Release(pkt.Slot)
		return
	}
	if len(sinks) > 1 {
		_ = r.mm.AddRef(pkt.Slot, len(sinks)-1)
	}
	r.deliverRemote(p, pkt, h.channel, sinks)
}

// deliverRemote hands a received packet's slot to the subscribed sinks.
func (r *Runtime) deliverRemote(p *poller, pkt *datapath.Packet, channel uint32, sinks []*SinkHandle) {
	payloadOff := pkt.Off + HeaderLen
	payloadLen := pkt.Len - HeaderLen
	//insane:bounded by=one entry per sink registered on the channel, fixed by the application
	for i, k := range sinks {
		tok := rxToken{
			slot:    pkt.Slot,
			buf:     pkt.Buf,
			off:     payloadOff,
			length:  payloadLen,
			channel: channel,
			vtime:   pkt.VTime,
			bd:      pkt.Breakdown,
		}
		d := r.deliveryCost(i)
		tok.vtime = tok.vtime.Add(d)
		tok.bd.Recv += d
		if !k.ring.TryPush(tok) {
			_ = r.mm.Release(pkt.Slot)
			p.shard.Inc(telemetry.CtrRingFullDrops)
			if k.ten != nil {
				k.ten.shard.Inc(telemetry.CtrRingFullDrops)
			}
			continue
		}
		if !k.noTel {
			p.shard.Observe(telemetry.HistDeliverLatency, int64(d))
		}
		k.wake()
	}
}

// handleControl applies a SUB/UNSUB message from a peer.
//
//insane:coldpath control-plane SUB/UNSUB handling, off the data path
func (r *Runtime) handleControl(h header, src netstack.IPv4) {
	peer, ok := r.subs.peerByIP(src)
	if !ok {
		r.warnf("control message from unknown peer %s", src)
		return
	}
	tech, err := techFromAux(h.aux)
	if err != nil {
		r.warnf("control message with bad tech from %s", peer.Name)
		return
	}
	switch h.kind {
	case kindSub:
		r.subs.subscribe(h.channel, peer, tech)
	case kindUnsub:
		r.subs.unsubscribe(h.channel, peer)
	}
}

// errPeerUnreachable builds a send error for a peer with no usable plane.
//
//insane:coldpath error construction for a peer that lost all planes
func errPeerUnreachable(name string) error {
	return &peerUnreachableError{name: name}
}

// peerUnreachableError reports a peer that cannot be reached on any plane.
type peerUnreachableError struct{ name string }

func (e *peerUnreachableError) Error() string {
	return "core: peer " + e.name + " unreachable on any technology plane"
}

// portMAC returns the MAC of a technology's port.
func (r *Runtime) portMAC(st *techState) netstack.MAC {
	return r.cfg.Ports[st.tech].MAC()
}

// portMTU returns the MTU of a technology's port.
func (r *Runtime) portMTU(st *techState) int {
	return r.cfg.Ports[st.tech].MTU()
}
