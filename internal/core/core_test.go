package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/fabric"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/netstack"
	"github.com/insane-mw/insane/internal/qos"
	"github.com/insane-mw/insane/internal/telemetry"
)

// world is a two-node test topology with one runtime per node.
type world struct {
	net  *fabric.Network
	a, b *Runtime
}

// buildWorld wires two hosts with the given capabilities: one fabric port
// per technology per host, direct links between matching planes.
func buildWorld(t *testing.T, capsA, capsB datapath.Caps, tune func(*Config)) *world {
	t.Helper()
	net := fabric.New(42)
	mkPorts := func(host byte, caps datapath.Caps) map[model.Tech]*fabric.Port {
		ports := make(map[model.Tech]*fabric.Port)
		for _, tech := range caps.List() {
			ip := netstack.IPv4{10, 0, byte(tech), host}
			p, err := net.AddHost(fmt.Sprintf("h%d-%s", host, tech), ip)
			if err != nil {
				t.Fatal(err)
			}
			ports[tech] = p
		}
		return ports
	}
	portsA := mkPorts(1, capsA)
	portsB := mkPorts(2, capsB)
	for tech, pa := range portsA {
		if pb, ok := portsB[tech]; ok {
			if err := net.ConnectDirect(pa, pb, fabric.DefaultLink); err != nil {
				t.Fatal(err)
			}
		}
	}
	addrsOf := func(ports map[model.Tech]*fabric.Port) map[model.Tech]netstack.IPv4 {
		m := make(map[model.Tech]netstack.IPv4, len(ports))
		for tech, p := range ports {
			m[tech] = p.IP()
		}
		return m
	}
	cfgA := Config{
		Name: "nodeA", Caps: capsA, Ports: portsA, Resolver: net.Resolver(),
		Peers: []Peer{{Name: "nodeB", Addrs: addrsOf(portsB)}},
	}
	cfgB := Config{
		Name: "nodeB", Caps: capsB, Ports: portsB, Resolver: net.Resolver(),
		Peers: []Peer{{Name: "nodeA", Addrs: addrsOf(portsA)}},
	}
	if tune != nil {
		tune(&cfgA)
		tune(&cfgB)
	}
	a, err := NewRuntime(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRuntime(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return &world{net: net, a: a, b: b}
}

// fullCaps has every acceleration technology.
var fullCaps = datapath.Caps{DPDK: true, XDP: true, RDMA: true}

// waitSubscribed blocks until the runtime learns about n remote
// subscribers on the channel.
func waitSubscribed(t *testing.T, r *Runtime, channel uint32, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if r.SubscriberCount(channel) >= n {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("channel %d: subscription from %d peers not learned", channel, n)
}

// sendOn emits one payload on a source and fails the test on error.
func sendOn(t *testing.T, src *SourceHandle, payload []byte) uint32 {
	t.Helper()
	b, err := src.GetBuffer(len(payload))
	if err != nil {
		t.Fatal(err)
	}
	copy(b.Payload, payload)
	seq, err := src.Emit(b, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestRuntimeValidation(t *testing.T) {
	if _, err := NewRuntime(Config{}); err == nil {
		t.Error("missing kernel port: want error")
	}
	net := fabric.New(1)
	p, _ := net.AddHost("x", netstack.IPv4{10, 0, 1, 1})
	if _, err := NewRuntime(Config{Ports: map[model.Tech]*fabric.Port{model.TechKernelUDP: p}}); err == nil {
		t.Error("missing resolver: want error")
	}
}

func TestSlowStreamRemoteDelivery(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	connA, _ := w.a.Connect()
	connB, _ := w.b.Connect()

	stA, err := connA.OpenStream(qos.Options{Datapath: qos.DatapathSlow})
	if err != nil {
		t.Fatal(err)
	}
	if stA.Tech() != model.TechKernelUDP || stA.FellBack() {
		t.Fatalf("slow stream mapped to %v (fellback=%v)", stA.Tech(), stA.FellBack())
	}
	stB, _ := connB.OpenStream(qos.Options{Datapath: qos.DatapathSlow})
	sink, err := stB.CreateSink(100)
	if err != nil {
		t.Fatal(err)
	}
	waitSubscribed(t, w.a, 100, 1)

	src, err := stA.CreateSource(100)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello from A over the kernel plane")
	sendOn(t, src, msg)

	d, err := sink.Consume(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Release(d)
	if !bytes.Equal(d.Payload, msg) {
		t.Errorf("payload = %q, want %q", d.Payload, msg)
	}
	if d.Channel != 100 {
		t.Errorf("channel = %d, want 100", d.Channel)
	}
	// Kernel one-way with runtime overhead ≈ 6.8 µs at this size.
	if d.VTime.Duration() < 5*time.Microsecond || d.VTime.Duration() > 9*time.Microsecond {
		t.Errorf("one-way vtime = %v, want ≈6.8µs", d.VTime)
	}
}

func TestFastStreamUsesRDMAWhenAvailable(t *testing.T) {
	w := buildWorld(t, fullCaps, fullCaps, nil)
	connA, _ := w.a.Connect()
	st, err := connA.OpenStream(qos.Options{Datapath: qos.DatapathFast})
	if err != nil {
		t.Fatal(err)
	}
	if st.Tech() != model.TechRDMA || st.FellBack() {
		t.Errorf("fast stream on full caps = %v (fellback=%v), want rdma", st.Tech(), st.FellBack())
	}
}

func TestFastStreamPingPongOverDPDK(t *testing.T) {
	caps := datapath.Caps{DPDK: true}
	w := buildWorld(t, caps, caps, nil)
	connA, _ := w.a.Connect()
	connB, _ := w.b.Connect()

	const pingCh, pongCh = 1, 2
	stA, _ := connA.OpenStream(qos.Options{Datapath: qos.DatapathFast})
	stB, _ := connB.OpenStream(qos.Options{Datapath: qos.DatapathFast})
	if stA.Tech() != model.TechDPDK {
		t.Fatalf("fast stream mapped to %v, want dpdk", stA.Tech())
	}

	pingSink, _ := stB.CreateSink(pingCh)
	pongSink, _ := stA.CreateSink(pongCh)
	waitSubscribed(t, w.a, pingCh, 1)
	waitSubscribed(t, w.b, pongCh, 1)
	pingSrc, _ := stA.CreateSource(pingCh)
	pongSrc, _ := stB.CreateSource(pongCh)

	payload := make([]byte, 64)
	const rounds = 30
	var rtts []time.Duration
	for i := 0; i < rounds; i++ {
		sendOn(t, pingSrc, payload)
		req, err := pingSink.Consume(2 * time.Second)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		// Echo: continue the request's virtual clock on the response.
		resp, err := pongSrc.GetBuffer(len(req.Payload))
		if err != nil {
			t.Fatal(err)
		}
		copy(resp.Payload, req.Payload)
		resp.VTime = req.VTime
		resp.Breakdown = req.Breakdown
		if _, err := pongSrc.Emit(resp, len(req.Payload)); err != nil {
			t.Fatal(err)
		}
		pingSink.Release(req)

		pong, err := pongSink.Consume(2 * time.Second)
		if err != nil {
			t.Fatalf("round %d pong: %v", i, err)
		}
		rtts = append(rtts, pong.VTime.Duration())
		pongSink.Release(pong)
	}
	// INSANE fast RTT ≈ 4.95 µs (64 B, local testbed).
	for _, rtt := range rtts {
		if rtt < 4500*time.Nanosecond || rtt > 5500*time.Nanosecond {
			t.Fatalf("INSANE fast RTT = %v, want ≈4.95µs", rtt)
		}
	}
}

func TestCoLocatedSharedMemoryDelivery(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	conn, _ := w.a.Connect()
	st, _ := conn.OpenStream(qos.Options{})
	sink, _ := st.CreateSink(5)
	src, _ := st.CreateSource(5)

	msg := []byte("co-located zero-copy")
	sendOn(t, src, msg)
	d, err := sink.Consume(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d.Payload, msg) {
		t.Errorf("payload = %q", d.Payload)
	}
	// Shared-memory forwarding never sends data to the network (the one
	// kernel TX packet is the sink's SUB control broadcast).
	if got := w.a.Stats().TxMessages; got != 0 {
		t.Errorf("co-located delivery hit the wire: %d data messages", got)
	}
	if w.a.Stats().LocalDeliveries != 1 {
		t.Errorf("LocalDeliveries = %d, want 1", w.a.Stats().LocalDeliveries)
	}
	// Local delivery is ns-scale: IPC + sched + delivery only.
	if d.VTime.Duration() > 2*time.Microsecond {
		t.Errorf("local delivery vtime = %v, want sub-2µs", d.VTime)
	}
	sink.Release(d)
}

func TestMultiSinkFanoutSharesOneSlot(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	conn, _ := w.a.Connect()
	st, _ := conn.OpenStream(qos.Options{})
	var sinks []*SinkHandle
	for i := 0; i < 3; i++ {
		k, err := st.CreateSink(9)
		if err != nil {
			t.Fatal(err)
		}
		sinks = append(sinks, k)
	}
	src, _ := st.CreateSource(9)
	msg := []byte("fanout")
	sendOn(t, src, msg)

	var deliveries []*Delivery
	for i, k := range sinks {
		d, err := k.Consume(2 * time.Second)
		if err != nil {
			t.Fatalf("sink %d: %v", i, err)
		}
		if !bytes.Equal(d.Payload, msg) {
			t.Errorf("sink %d payload = %q", i, d.Payload)
		}
		deliveries = append(deliveries, d)
	}
	// All sinks must see the same slot (zero-copy fanout).
	for _, d := range deliveries[1:] {
		if d.Slot != deliveries[0].Slot {
			t.Error("fanout delivered different slots; want shared refcounted slot")
		}
	}
	free := w.a.Mem().FreeSlots()
	for i, k := range sinks {
		k.Release(deliveries[i])
	}
	after := w.a.Mem().FreeSlots()
	if after[0] != free[0]+1 {
		t.Errorf("slot not recycled exactly once: %v → %v", free, after)
	}
}

func TestEmitOutcome(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	connA, _ := w.a.Connect()
	connB, _ := w.b.Connect()
	stA, _ := connA.OpenStream(qos.Options{})
	stB, _ := connB.OpenStream(qos.Options{})
	sinkLocal, _ := stA.CreateSink(7)
	sinkRemote, _ := stB.CreateSink(7)
	waitSubscribed(t, w.a, 7, 1)
	src, _ := stA.CreateSource(7)

	seq := sendOn(t, src, []byte("outcome"))
	deadline := time.Now().Add(2 * time.Second)
	for {
		if o, ok := src.Outcome(seq); ok {
			if o.LocalSinks != 1 || o.RemotePeers != 1 || o.Err != nil {
				t.Fatalf("outcome = %+v, want 1 local, 1 remote", o)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("outcome never recorded")
		}
		time.Sleep(50 * time.Microsecond)
	}
	if _, ok := src.Outcome(seq + 1000); ok {
		t.Error("unknown seq returned an outcome")
	}
	// Drain so slots go back.
	d1, _ := sinkLocal.Consume(time.Second)
	sinkLocal.Release(d1)
	d2, _ := sinkRemote.Consume(time.Second)
	sinkRemote.Release(d2)
}

func TestFallbackWarningOnBareHost(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	conn, _ := w.a.Connect()
	st, err := conn.OpenStream(qos.Options{Datapath: qos.DatapathFast})
	if err != nil {
		t.Fatal(err)
	}
	if st.Tech() != model.TechKernelUDP || !st.FellBack() {
		t.Errorf("fast on bare host = %v (fellback=%v), want kernel fallback", st.Tech(), st.FellBack())
	}
	if len(w.a.Warnings()) == 0 {
		t.Error("fallback did not record a warning")
	}
}

// TestHeterogeneousDowngrade reproduces the migration motivation: the
// sender's fast stream maps to DPDK, but the peer only has the kernel
// plane, so the runtime transparently downgrades the transmission.
func TestHeterogeneousDowngrade(t *testing.T) {
	w := buildWorld(t, datapath.Caps{DPDK: true}, datapath.Caps{}, nil)
	connA, _ := w.a.Connect()
	connB, _ := w.b.Connect()

	stA, _ := connA.OpenStream(qos.Options{Datapath: qos.DatapathFast})
	if stA.Tech() != model.TechDPDK {
		t.Fatalf("sender stream = %v, want dpdk", stA.Tech())
	}
	stB, _ := connB.OpenStream(qos.Options{Datapath: qos.DatapathFast})
	if stB.Tech() != model.TechKernelUDP || !stB.FellBack() {
		t.Fatalf("receiver stream = %v (fellback=%v), want kernel fallback", stB.Tech(), stB.FellBack())
	}
	sink, _ := stB.CreateSink(3)
	waitSubscribed(t, w.a, 3, 1)
	src, _ := stA.CreateSource(3)
	msg := []byte("downgraded delivery")
	sendOn(t, src, msg)

	d, err := sink.Consume(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d.Payload, msg) {
		t.Errorf("payload = %q", d.Payload)
	}
	sink.Release(d)
	if w.a.Stats().TechDowngrades == 0 {
		t.Error("downgrade not counted")
	}
}

func TestTimeSensitiveStreamDelivers(t *testing.T) {
	w := buildWorld(t, datapath.Caps{DPDK: true}, datapath.Caps{DPDK: true}, nil)
	connA, _ := w.a.Connect()
	connB, _ := w.b.Connect()
	opts := qos.Options{Datapath: qos.DatapathFast, Timing: qos.TimingSensitive, Class: 7}
	stA, err := connA.OpenStream(opts)
	if err != nil {
		t.Fatal(err)
	}
	stB, _ := connB.OpenStream(opts)
	sink, _ := stB.CreateSink(11)
	waitSubscribed(t, w.a, 11, 1)
	src, _ := stA.CreateSource(11)
	sendOn(t, src, []byte("tsn"))
	d, err := sink.Consume(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sink.Release(d)
}

func TestSessionCloseReclaimsAndUnsubscribes(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	connB, _ := w.b.Connect()
	stB, _ := connB.OpenStream(qos.Options{})
	_, err := stB.CreateSink(77)
	if err != nil {
		t.Fatal(err)
	}
	waitSubscribed(t, w.a, 77, 1)

	// Leak a buffer on purpose, then close the session.
	connA2, _ := w.b.Connect()
	stA2, _ := connA2.OpenStream(qos.Options{})
	src, _ := stA2.CreateSource(78)
	if _, err := src.GetBuffer(128); err != nil {
		t.Fatal(err)
	}
	if err := connA2.Close(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, warn := range w.b.Warnings() {
		if wantSubstring(warn, "reclaimed 1 leaked slots") {
			found = true
		}
	}
	if !found {
		t.Errorf("leaked slot not reclaimed; warnings: %v", w.b.Warnings())
	}

	// Closing the sink's session withdraws the remote subscription.
	if err := connB.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for w.a.SubscriberCount(77) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("unsubscription never propagated")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func wantSubstring(s, sub string) bool {
	return len(s) >= len(sub) && bytes.Contains([]byte(s), []byte(sub))
}

func TestClosedHandlesError(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	conn, _ := w.a.Connect()
	st, _ := conn.OpenStream(qos.Options{})
	src, _ := st.CreateSource(1)
	sink, _ := st.CreateSink(1)
	st.Close()

	if _, err := src.GetBuffer(10); !errors.Is(err, ErrClosed) {
		t.Errorf("GetBuffer after close = %v", err)
	}
	if _, err := sink.TryConsume(); !errors.Is(err, ErrClosed) {
		t.Errorf("TryConsume after close = %v", err)
	}
	if _, err := st.CreateSource(2); !errors.Is(err, ErrClosed) {
		t.Errorf("CreateSource on closed stream = %v", err)
	}
	conn.Close()
	if _, err := conn.OpenStream(qos.Options{}); !errors.Is(err, ErrClosed) {
		t.Errorf("OpenStream on closed conn = %v", err)
	}
	w.a.Close()
	if _, err := w.a.Connect(); !errors.Is(err, ErrClosed) {
		t.Errorf("Connect on closed runtime = %v", err)
	}
}

func TestNoSinkDropsCounted(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	connB, _ := w.b.Connect()
	stB, _ := connB.OpenStream(qos.Options{})
	sink, _ := stB.CreateSink(50)
	waitSubscribed(t, w.a, 50, 1)
	sink.Close() // B told A it unsubscribed, but suppose the message races:
	// re-subscribe table is already updated synchronously on B itself, so
	// send after local close from A's stale view.
	connA, _ := w.a.Connect()
	stA, _ := connA.OpenStream(qos.Options{})
	src, _ := stA.CreateSource(50)
	sendOn(t, src, []byte("orphan"))

	deadline := time.Now().Add(2 * time.Second)
	for w.b.Stats().NoSinkDrops == 0 && w.a.SubscriberCount(50) > 0 {
		if time.Now().After(deadline) {
			t.Skip("message raced with unsubscription; nothing to assert")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestInvalidQoSRejected(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	conn, _ := w.a.Connect()
	if _, err := conn.OpenStream(qos.Options{Class: 99}); err == nil {
		t.Error("invalid class accepted")
	}
}

func TestEmitValidation(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	conn, _ := w.a.Connect()
	st, _ := conn.OpenStream(qos.Options{})
	src, _ := st.CreateSource(1)
	b, err := src.GetBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Emit(b, 17); err == nil {
		t.Error("emit beyond buffer accepted")
	}
	if _, err := src.Emit(b, -1); err == nil {
		t.Error("negative emit accepted")
	}
	src.Abort(b)
}

func TestSharedPollerMode(t *testing.T) {
	w := buildWorld(t, fullCaps, fullCaps, func(c *Config) { c.SharedPoller = true })
	if len(w.a.pollers) != 1 {
		t.Fatalf("shared poller count = %d, want 1", len(w.a.pollers))
	}
	connA, _ := w.a.Connect()
	connB, _ := w.b.Connect()
	stA, _ := connA.OpenStream(qos.Options{Datapath: qos.DatapathFast})
	stB, _ := connB.OpenStream(qos.Options{Datapath: qos.DatapathFast})
	sink, _ := stB.CreateSink(8)
	waitSubscribed(t, w.a, 8, 1)
	src, _ := stA.CreateSource(8)
	sendOn(t, src, []byte("shared poller"))
	d, err := sink.Consume(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sink.Release(d)
}

func TestTechsAndCaps(t *testing.T) {
	w := buildWorld(t, fullCaps, datapath.Caps{}, nil)
	if got := len(w.a.Techs()); got != 4 {
		t.Errorf("full-caps Techs = %d, want 4", got)
	}
	if got := len(w.b.Techs()); got != 1 {
		t.Errorf("bare Techs = %d, want 1", got)
	}
	if !w.a.EffectiveCaps().DPDK || w.b.EffectiveCaps().DPDK {
		t.Error("EffectiveCaps wrong")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	buf := make([]byte, HeaderLen)
	h := header{kind: kindData, channel: 0xDEADBEEF, class: 5, aux: 2, seq: 42}
	encodeHeader(buf, h)
	got, err := decodeHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("header = %+v, want %+v", got, h)
	}
	// Corruptions.
	for _, corrupt := range []func([]byte){
		func(b []byte) { b[0] = 0 },   // magic
		func(b []byte) { b[2] = 99 },  // version
		func(b []byte) { b[3] = 200 }, // kind
	} {
		c := append([]byte(nil), buf...)
		corrupt(c)
		if _, err := decodeHeader(c); err == nil {
			t.Error("corrupted header accepted")
		}
	}
	if _, err := decodeHeader(buf[:8]); err == nil {
		t.Error("short header accepted")
	}
	if _, err := techFromAux(99); err == nil {
		t.Error("bad aux tech accepted")
	}
}

// TestCloseReclaimsQueuedTxTokens pins the teardown half of the tenant
// charge/refund balance (DESIGN.md §12/§13): TX tokens still queued in a
// session's lanes when it detaches — here because the runtime stopped
// before any poller could drain them — must be settled by dropConn, with
// the tenant's in-flight count back at zero, every slot back in the
// pool, and the reclaim visible in telemetry.
func TestCloseReclaimsQueuedTxTokens(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, func(cfg *Config) {
		cfg.Tenants = []TenantSpec{{Name: "acme", TxTokens: 8, MemSlots: 8}}
	})
	freeBefore := 0
	for _, n := range w.a.mm.FreeSlots() {
		freeBefore += n
	}
	conn, err := w.a.ConnectTenant("acme")
	if err != nil {
		t.Fatal(err)
	}
	st, err := conn.OpenStream(qos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := st.CreateSource(33)
	if err != nil {
		t.Fatal(err)
	}

	// Stop the pollers first: every Emit below charges the tenant and
	// queues a token in the lane that no poller will ever drain.
	if err := w.a.Close(); err != nil {
		t.Fatal(err)
	}
	const queued = 4
	for i := 0; i < queued; i++ {
		b, err := src.GetBuffer(64)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := src.Emit(b, 64); err != nil {
			t.Fatal(err)
		}
	}
	if got := conn.ten.inflight.Load(); got != queued {
		t.Fatalf("inflight after %d undrained emits = %d", queued, got)
	}

	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if got := conn.ten.inflight.Load(); got != 0 {
		t.Errorf("inflight after Close = %d, want 0 (TX charges leaked)", got)
	}
	if got := w.a.tel.Counter(telemetry.CtrTxReclaims); got != queued {
		t.Errorf("tx_reclaims = %d, want %d", got, queued)
	}
	freeAfter := 0
	for _, n := range w.a.mm.FreeSlots() {
		freeAfter += n
	}
	if freeAfter != freeBefore {
		t.Errorf("free slots after Close = %d, want %d (slots leaked)", freeAfter, freeBefore)
	}
}
