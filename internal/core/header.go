// Package core implements the INSANE runtime (§5.3): the userspace module
// that centralizes host networking and offers it as a service to local
// applications. It contains the four architectural components of Fig. 3 —
// memory manager (internal/mempool), packet scheduler (internal/sched),
// polling threads, and datapath plugins (internal/datapath/...) — plus the
// session/stream/channel bookkeeping behind the client library API.
//
// The client library and the runtime communicate exclusively by exchanging
// memory-slot tokens over lock-free rings (internal/ringbuf), mirroring the
// shared-memory IPC of the C prototype; payload bytes are written once by
// the application into a pool slot and never copied inside the host.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/model"
)

// HeaderLen is the size of the INSANE transport header that precedes every
// message on the wire. The header sits between the (technology-specific)
// network headers and the application payload.
const HeaderLen = 16

// MsgHeadroom is the slot space reserved before the application payload:
// room for the technology frame headers plus the INSANE header, so that
// framing happens in place (zero-copy).
const MsgHeadroom = datapath.Headroom + HeaderLen

// headerMagic identifies INSANE traffic.
const headerMagic = 0x1A5E

// headerVersion is the current wire version.
const headerVersion = 1

// msgKind discriminates data from control-plane messages.
type msgKind uint8

// Message kinds.
const (
	kindData msgKind = iota + 1
	// kindSub announces that the sender hosts sinks for a channel,
	// reachable via the technology in the aux field.
	kindSub
	// kindUnsub withdraws a previous subscription.
	kindUnsub
)

// header is the INSANE transport header.
//
// Layout (16 bytes): magic u16 | version u8 | kind u8 | channel u32 |
// class u8 | aux u8 | seq u32 | reserved u16.
type header struct {
	kind    msgKind
	channel uint32
	// class is the 802.1Qbv traffic class of data messages.
	class uint8
	// aux carries the subscriber's reachable technology on kindSub /
	// kindUnsub messages.
	aux uint8
	// seq is the source-local sequence number of data messages.
	seq uint32
}

// errBadHeader reports a malformed or foreign INSANE header.
var errBadHeader = errors.New("core: bad INSANE header")

// encodeHeader writes h into buf (length >= HeaderLen).
func encodeHeader(buf []byte, h header) {
	binary.BigEndian.PutUint16(buf[0:2], headerMagic)
	buf[2] = headerVersion
	buf[3] = byte(h.kind)
	binary.BigEndian.PutUint32(buf[4:8], h.channel)
	buf[8] = h.class
	buf[9] = h.aux
	binary.BigEndian.PutUint32(buf[10:14], h.seq)
	buf[14], buf[15] = 0, 0
}

// decodeHeader parses and validates an INSANE header. It returns the
// static errBadHeader sentinel on every failure: the RX poll loop calls
// it per packet, and a hostile sender spraying malformed frames must
// not be able to drive per-packet error formatting (hot-path rule;
// match on errors.Is(err, errBadHeader) rather than the message).
func decodeHeader(buf []byte) (header, error) {
	if len(buf) < HeaderLen {
		return header{}, errBadHeader
	}
	if binary.BigEndian.Uint16(buf[0:2]) != headerMagic {
		return header{}, errBadHeader
	}
	if buf[2] != headerVersion {
		return header{}, errBadHeader
	}
	k := msgKind(buf[3])
	if k < kindData || k > kindUnsub {
		return header{}, errBadHeader
	}
	return header{
		kind:    k,
		channel: binary.BigEndian.Uint32(buf[4:8]),
		class:   buf[8],
		aux:     buf[9],
		seq:     binary.BigEndian.Uint32(buf[10:14]),
	}, nil
}

// techFromAux converts a subscription message's aux byte back to a Tech,
// validating the range.
func techFromAux(aux uint8) (model.Tech, error) {
	t := model.Tech(aux)
	switch t {
	case model.TechKernelUDP, model.TechXDP, model.TechDPDK, model.TechRDMA:
		return t, nil
	default:
		return 0, fmt.Errorf("%w: tech %d", errBadHeader, aux)
	}
}
