package core

import (
	"bytes"
	"testing"
	"time"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/qos"
	"github.com/insane-mw/insane/internal/sched"
	"github.com/insane-mw/insane/internal/timebase"
)

// rtcOpts is the QoS contract of a run-to-completion stream.
var rtcOpts = qos.Options{RunToCompletion: true}

// TestRTCDeliversSynchronously: a purely local single-sink emit on an
// RTC stream must be delivered by the emitting goroutine — consumable
// immediately, counted under RTCDeliveries, with zero fallbacks.
func TestRTCDeliversSynchronously(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	conn, _ := w.a.Connect()
	st, err := conn.OpenStream(rtcOpts)
	if err != nil {
		t.Fatal(err)
	}
	sink, _ := st.CreateSink(31)
	src, _ := st.CreateSource(31)

	sendOn(t, src, []byte("sync"))
	// No waiting: the delivery was pushed before Emit returned.
	d, err := sink.TryConsume()
	if err != nil {
		t.Fatalf("RTC delivery not immediately consumable: %v", err)
	}
	if !bytes.Equal(d.Payload, []byte("sync")) {
		t.Errorf("payload = %q, want %q", d.Payload, "sync")
	}
	if d.VTime.Duration() <= 0 {
		t.Error("RTC delivery carries no virtual-time charge")
	}
	sink.Release(d)

	s := w.a.Stats()
	if s.RTCDeliveries != 1 {
		t.Errorf("RTCDeliveries = %d, want 1", s.RTCDeliveries)
	}
	if s.RTCFallbacks != 0 {
		t.Errorf("RTCFallbacks = %d, want 0", s.RTCFallbacks)
	}
	if s.LocalDeliveries != 1 {
		t.Errorf("LocalDeliveries = %d, want 1", s.LocalDeliveries)
	}
}

// TestRTCOutcomeRecorded: the synchronous path must feed EmitOutcome
// exactly like the queued one.
func TestRTCOutcomeRecorded(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	conn, _ := w.a.Connect()
	st, _ := conn.OpenStream(rtcOpts)
	sink, _ := st.CreateSink(32)
	src, _ := st.CreateSource(32)

	seq := sendOn(t, src, []byte("outcome"))
	o, ok := src.Outcome(seq)
	if !ok {
		t.Fatal("RTC emit outcome not recorded")
	}
	if o.LocalSinks != 1 || o.RemotePeers != 0 || o.Err != nil {
		t.Errorf("outcome = %+v, want 1 local sink", o)
	}
	d, err := sink.TryConsume()
	if err != nil {
		t.Fatal(err)
	}
	sink.Release(d)
}

// TestRTCFallbackRemoteSubscriber: a remote peer subscribed to the
// channel forces the queued path (the poller owns remote framing), and
// the message still reaches both the local and the remote sink.
func TestRTCFallbackRemoteSubscriber(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	connA, _ := w.a.Connect()
	connB, _ := w.b.Connect()
	stA, _ := connA.OpenStream(rtcOpts)
	stB, _ := connB.OpenStream(qos.Options{})
	localSink, _ := stA.CreateSink(33)
	remoteSink, _ := stB.CreateSink(33)
	waitSubscribed(t, w.a, 33, 1)
	src, _ := stA.CreateSource(33)

	sendOn(t, src, []byte("remote-too"))
	for _, k := range []*SinkHandle{localSink, remoteSink} {
		d, err := k.Consume(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(d.Payload, []byte("remote-too")) {
			t.Errorf("payload = %q", d.Payload)
		}
		k.Release(d)
	}
	s := w.a.Stats()
	if s.RTCFallbacks != 1 {
		t.Errorf("RTCFallbacks = %d, want 1", s.RTCFallbacks)
	}
	if s.RTCDeliveries != 0 {
		t.Errorf("RTCDeliveries = %d, want 0", s.RTCDeliveries)
	}
}

// TestRTCFallbackWideFanout: more than RTCMaxFanout local sinks fall
// back to the queued path, which still fans the message out to all.
func TestRTCFallbackWideFanout(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	conn, _ := w.a.Connect()
	st, _ := conn.OpenStream(rtcOpts)
	sinks := make([]*SinkHandle, RTCMaxFanout+1)
	for i := range sinks {
		k, err := st.CreateSink(34)
		if err != nil {
			t.Fatal(err)
		}
		sinks[i] = k
	}
	src, _ := st.CreateSource(34)

	sendOn(t, src, []byte("wide"))
	for i, k := range sinks {
		d, err := k.Consume(2 * time.Second)
		if err != nil {
			t.Fatalf("sink %d: %v", i, err)
		}
		k.Release(d)
	}
	s := w.a.Stats()
	if s.RTCFallbacks != 1 {
		t.Errorf("RTCFallbacks = %d, want 1", s.RTCFallbacks)
	}
	if s.RTCDeliveries != 0 {
		t.Errorf("RTCDeliveries = %d, want 0", s.RTCDeliveries)
	}
}

// TestRTCFallbackClosedGate: a time-sensitive RTC stream whose class
// gate is closed must not deliver synchronously — the packet belongs in
// the time-aware shaper until the gate opens.
func TestRTCFallbackClosedGate(t *testing.T) {
	clock := &timebase.SimClock{}
	gcl := sched.GCL{
		{Duration: 100 * time.Microsecond, Gates: 1 << 7}, // class 7 only
		{Duration: 100 * time.Microsecond, Gates: 0x7F},   // the rest
	}
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, func(c *Config) {
		c.Clock = clock
		c.GCL = gcl
	})
	conn, _ := w.a.Connect()
	st, err := conn.OpenStream(qos.Options{
		Timing: qos.TimingSensitive, Class: 0, RunToCompletion: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sink, _ := st.CreateSink(35)
	src, _ := st.CreateSource(35)

	// Pin the clock inside the class-7-only window: class 0 is gated.
	clock.Set(timebase.VTime(10 * time.Microsecond))
	sendOn(t, src, []byte("gated"))
	if s := w.a.Stats(); s.RTCFallbacks != 1 || s.RTCDeliveries != 0 {
		t.Errorf("closed gate: RTCFallbacks=%d RTCDeliveries=%d, want 1/0",
			s.RTCFallbacks, s.RTCDeliveries)
	}
	// The shaper must hold the packet while the gate stays closed.
	time.Sleep(20 * time.Millisecond)
	if _, err := sink.TryConsume(); err == nil {
		t.Fatal("packet leaked through a closed gate")
	}
	clock.Set(timebase.VTime(150 * time.Microsecond))
	d, err := sink.Consume(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sink.Release(d)

	// With the clock in the open window the fast path engages.
	sendOn(t, src, []byte("open"))
	if s := w.a.Stats(); s.RTCDeliveries != 1 {
		t.Errorf("open gate: RTCDeliveries = %d, want 1", s.RTCDeliveries)
	}
	d, err = sink.TryConsume()
	if err != nil {
		t.Fatal(err)
	}
	sink.Release(d)
}

// TestRTCFallbackFullSinkRing: a sink ring at capacity fails the
// admission check, so the emit takes the queued path where backpressure
// accounting lives.
func TestRTCFallbackFullSinkRing(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	conn, _ := w.a.Connect()
	st, _ := conn.OpenStream(rtcOpts)
	sink, _ := st.CreateSink(36)
	src, _ := st.CreateSource(36)

	// Fill the sink ring to the brim through the fast path itself.
	for i := 0; i < rxRingDepth; i++ {
		sendOn(t, src, []byte("fill"))
	}
	s := w.a.Stats()
	if s.RTCDeliveries != rxRingDepth || s.RTCFallbacks != 0 {
		t.Fatalf("fill phase: RTCDeliveries=%d RTCFallbacks=%d, want %d/0",
			s.RTCDeliveries, s.RTCFallbacks, rxRingDepth)
	}
	// The ring is full: the next emit must fall back.
	sendOn(t, src, []byte("overflow"))
	if s := w.a.Stats(); s.RTCFallbacks != 1 {
		t.Errorf("overflow: RTCFallbacks = %d, want 1", s.RTCFallbacks)
	}
	// Drain and confirm nothing was lost out of order.
	for i := 0; i < rxRingDepth; i++ {
		d, err := sink.Consume(2 * time.Second)
		if err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
		sink.Release(d)
	}
}

// TestSteadyStateZeroAllocRTC gates the run-to-completion path at zero
// allocations, like TestSteadyStateZeroAllocCore does the queued one.
func TestSteadyStateZeroAllocRTC(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the gate measures the plain build")
	}
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	conn, err := w.a.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	st, err := conn.OpenStream(rtcOpts)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := st.CreateSink(37)
	if err != nil {
		t.Fatal(err)
	}
	src, err := st.CreateSource(37)
	if err != nil {
		t.Fatal(err)
	}

	op := func() {
		b, err := src.GetBuffer(64)
		if err != nil {
			t.Fatal(err)
		}
		copy(b.Payload, "steady-state")
		if _, err := src.Emit(b, 64); err != nil {
			t.Fatal(err)
		}
		d, err := sink.TryConsume()
		if err != nil {
			t.Fatal(err)
		}
		sink.Release(d)
	}

	for i := 0; i < 500; i++ {
		op()
	}
	var avg float64
	for attempt := 0; attempt < 2; attempt++ {
		avg = testing.AllocsPerRun(200, op)
		if avg == 0 {
			break
		}
	}
	if avg != 0 {
		t.Fatalf("RTC steady-state path allocates: %.2f allocs/op, want 0", avg)
	}
	// Every measured emit must actually have taken the fast path.
	if s := w.a.Stats(); s.RTCFallbacks != 0 {
		t.Errorf("RTCFallbacks = %d during the gate, want 0", s.RTCFallbacks)
	}
}
