package core

import (
	"testing"
	"time"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/qos"
	"github.com/insane-mw/insane/internal/sched"
	"github.com/insane-mw/insane/internal/timebase"
)

// TestTSNGateWaitAccountedInVTime drives a time-sensitive stream with a
// SimClock pinned inside the closed-gate region and verifies the gate
// wait surfaces in the delivery's virtual latency once the gate opens.
func TestTSNGateWaitAccountedInVTime(t *testing.T) {
	clock := &timebase.SimClock{}
	gcl := sched.GCL{
		{Duration: 100 * time.Microsecond, Gates: 1 << 7}, // class 7 only
		{Duration: 100 * time.Microsecond, Gates: 0x7F},   // the rest
	}
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, func(c *Config) {
		c.Clock = clock
		c.GCL = gcl
	})

	connA, _ := w.a.Connect()
	connB, _ := w.b.Connect()
	opts := qos.Options{Timing: qos.TimingSensitive, Class: 0} // gated class
	stA, err := connA.OpenStream(opts)
	if err != nil {
		t.Fatal(err)
	}
	stB, _ := connB.OpenStream(opts)
	sink, _ := stB.CreateSink(21)
	waitSubscribed(t, w.a, 21, 1)
	src, _ := stA.CreateSource(21)

	// Pin the clock inside the protected window: class 0 is gated.
	clock.Set(timebase.VTime(10 * time.Microsecond))
	sendOn(t, src, []byte("gated"))

	// Give the poller time to pull the token into the shaper; the gate
	// stays closed so nothing must be delivered.
	time.Sleep(20 * time.Millisecond)
	if _, err := sink.TryConsume(); err == nil {
		t.Fatal("packet leaked through a closed gate")
	}

	// Open the gate: move the clock into the open window.
	clock.Set(timebase.VTime(150 * time.Microsecond))
	d, err := sink.Consume(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Release(d)
	// The delivery must account ≥ the 140µs spent waiting for the gate.
	if d.VTime.Duration() < 140*time.Microsecond {
		t.Errorf("delivery vtime = %v, want ≥140µs of gate wait", d.VTime)
	}
}

// TestBestEffortUnaffectedByGates: FIFO streams must flow while the TSN
// gate for other classes is closed.
func TestBestEffortUnaffectedByGates(t *testing.T) {
	clock := &timebase.SimClock{}
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, func(c *Config) {
		c.Clock = clock
	})
	connA, _ := w.a.Connect()
	connB, _ := w.b.Connect()
	stA, _ := connA.OpenStream(qos.Options{})
	stB, _ := connB.OpenStream(qos.Options{})
	sink, _ := stB.CreateSink(22)
	waitSubscribed(t, w.a, 22, 1)
	src, _ := stA.CreateSource(22)
	sendOn(t, src, []byte("best effort"))
	if _, err := sink.Consume(2 * time.Second); err != nil {
		t.Fatalf("best-effort delivery blocked: %v", err)
	}
}

// TestConcurrentSessionsIsolated runs several sessions pumping distinct
// channels simultaneously and checks that nothing crosses over.
func TestConcurrentSessionsIsolated(t *testing.T) {
	w := buildWorld(t, datapath.Caps{DPDK: true}, datapath.Caps{DPDK: true}, nil)
	const sessions = 4
	const perSession = 50

	type lane struct {
		src  *SourceHandle
		sink *SinkHandle
		ch   uint32
	}
	lanes := make([]lane, sessions)
	for i := range lanes {
		connA, err := w.a.Connect()
		if err != nil {
			t.Fatal(err)
		}
		connB, err := w.b.Connect()
		if err != nil {
			t.Fatal(err)
		}
		stA, _ := connA.OpenStream(qos.Options{Datapath: qos.DatapathFast})
		stB, _ := connB.OpenStream(qos.Options{Datapath: qos.DatapathFast})
		ch := uint32(100 + i)
		sink, err := stB.CreateSink(ch)
		if err != nil {
			t.Fatal(err)
		}
		waitSubscribed(t, w.a, ch, 1)
		src, err := stA.CreateSource(ch)
		if err != nil {
			t.Fatal(err)
		}
		lanes[i] = lane{src: src, sink: sink, ch: ch}
	}

	done := make(chan error, sessions)
	for i := range lanes {
		go func(i int) {
			l := lanes[i]
			for m := 0; m < perSession; m++ {
				b, err := l.src.GetBuffer(8)
				if err != nil {
					done <- err
					return
				}
				b.Payload[0] = byte(i)
				b.Payload[1] = byte(m)
				for {
					_, err = l.src.Emit(b, 8)
					if err != ErrBackpressure {
						break
					}
					time.Sleep(5 * time.Microsecond)
				}
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(i)
	}
	for range lanes {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for i, l := range lanes {
		for m := 0; m < perSession; m++ {
			d, err := l.sink.Consume(2 * time.Second)
			if err != nil {
				t.Fatalf("lane %d msg %d: %v", i, m, err)
			}
			if d.Payload[0] != byte(i) {
				t.Fatalf("lane %d received lane %d's message", i, d.Payload[0])
			}
			if d.Payload[1] != byte(m) {
				t.Fatalf("lane %d: message %d arrived as %d (order broken)", i, m, d.Payload[1])
			}
			l.sink.Release(d)
		}
	}
}

// TestBackpressureSurfaceToEmitter fills the TX ring of a stopped-world
// session and checks Emit reports ErrBackpressure instead of blocking or
// dropping silently.
func TestBackpressureSurfaceToEmitter(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	// Stop the pollers so the ring cannot drain.
	for _, p := range w.a.pollers {
		close(p.stop)
	}
	w.a.wg.Wait()

	conn, _ := w.a.Connect()
	st, _ := conn.OpenStream(qos.Options{})
	src, _ := st.CreateSource(1)
	sawBackpressure := false
	for i := 0; i < txRingDepth+10; i++ {
		b, err := src.GetBuffer(16)
		if err != nil {
			break // pool exhausted first is also acceptable backpressure
		}
		if _, err := src.Emit(b, 16); err == ErrBackpressure {
			sawBackpressure = true
			src.Abort(b)
			break
		}
	}
	if !sawBackpressure {
		t.Error("full TX ring never reported ErrBackpressure")
	}
	w.a.stopped.Store(true) // avoid double close in cleanup
}

// TestStatsAccumulate sanity-checks the runtime counters across a small
// workload.
func TestStatsAccumulate(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	connA, _ := w.a.Connect()
	connB, _ := w.b.Connect()
	stA, _ := connA.OpenStream(qos.Options{})
	stB, _ := connB.OpenStream(qos.Options{})
	sink, _ := stB.CreateSink(31)
	localSink, _ := stA.CreateSink(31)
	waitSubscribed(t, w.a, 31, 1)
	src, _ := stA.CreateSource(31)

	const n = 10
	for i := 0; i < n; i++ {
		sendOn(t, src, []byte{byte(i)})
	}
	for i := 0; i < n; i++ {
		d, err := sink.Consume(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		sink.Release(d)
		dl, err := localSink.Consume(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		localSink.Release(dl)
	}
	sa, sb := w.a.Stats(), w.b.Stats()
	if sa.TxMessages != n {
		t.Errorf("A TxMessages = %d, want %d", sa.TxMessages, n)
	}
	if sa.LocalDeliveries != n {
		t.Errorf("A LocalDeliveries = %d, want %d", sa.LocalDeliveries, n)
	}
	if sb.RxMessages != n {
		t.Errorf("B RxMessages = %d, want %d", sb.RxMessages, n)
	}
	if ep, ok := sb.Endpoint[model.TechKernelUDP]; !ok || ep.RxPackets < n {
		t.Errorf("B endpoint stats missing: %+v", sb.Endpoint)
	}
}

// TestMultiPollerPerPlugin runs two polling threads per plugin (§8's
// receive-side parallelism) and checks ordering-insensitive delivery of a
// concurrent workload.
func TestMultiPollerPerPlugin(t *testing.T) {
	w := buildWorld(t, datapath.Caps{DPDK: true}, datapath.Caps{DPDK: true}, func(c *Config) {
		c.PollersPerPlugin = 2
	})
	if got := len(w.a.pollers); got != 4 { // 2 plugins x 2 pollers
		t.Fatalf("pollers = %d, want 4", got)
	}
	connA, _ := w.a.Connect()
	connB, _ := w.b.Connect()
	stA, _ := connA.OpenStream(qos.Options{Datapath: qos.DatapathFast})
	stB, _ := connB.OpenStream(qos.Options{Datapath: qos.DatapathFast})
	sink, _ := stB.CreateSink(41)
	waitSubscribed(t, w.a, 41, 1)
	src, _ := stA.CreateSource(41)

	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			b, err := src.GetBuffer(4)
			if err != nil {
				return
			}
			b.Payload[0] = byte(i)
			for {
				if _, err := src.Emit(b, 4); err != ErrBackpressure {
					break
				}
				time.Sleep(5 * time.Microsecond)
			}
		}
	}()
	seen := make(map[byte]bool, n)
	for i := 0; i < n; i++ {
		d, err := sink.Consume(5 * time.Second)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		seen[d.Payload[0]] = true
		sink.Release(d)
	}
	if len(seen) != n {
		t.Errorf("distinct messages = %d, want %d", len(seen), n)
	}
}

// TestPortFailureSurfacesInOutcome kills the peer-facing NIC port under
// the sender and checks the failure shows up in the emit outcome instead
// of being swallowed.
func TestPortFailureSurfacesInOutcome(t *testing.T) {
	w := buildWorld(t, datapath.Caps{}, datapath.Caps{}, nil)
	connA, _ := w.a.Connect()
	connB, _ := w.b.Connect()
	stA, _ := connA.OpenStream(qos.Options{})
	stB, _ := connB.OpenStream(qos.Options{})
	_, err := stB.CreateSink(61)
	if err != nil {
		t.Fatal(err)
	}
	waitSubscribed(t, w.a, 61, 1)
	src, _ := stA.CreateSource(61)

	// Kill A's kernel port: the "NIC died" failure mode.
	w.a.cfg.Ports[model.TechKernelUDP].Close()

	seq := sendOn(t, src, []byte("doomed"))
	deadline := time.Now().Add(2 * time.Second)
	for {
		if o, ok := src.Outcome(seq); ok {
			if o.Err == nil || o.RemotePeers != 0 {
				t.Fatalf("outcome = %+v, want send error and zero peers", o)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("outcome never recorded after port failure")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestInspectReportsState smoke-tests the operator view.
func TestInspectReportsState(t *testing.T) {
	w := buildWorld(t, datapath.Caps{DPDK: true}, datapath.Caps{}, nil)
	conn, _ := w.a.Connect()
	st, _ := conn.OpenStream(qos.Options{})
	st.CreateSink(71)
	out := w.a.Inspect()
	for _, want := range []string{"runtime \"nodeA\"", "kernel-udp", "dpdk", "sessions: 1", "channel 71", "memory pools"} {
		if !wantSubstring(out, want) {
			t.Errorf("Inspect missing %q in:\n%s", want, out)
		}
	}
	// The peer learned the subscription and reports it.
	waitSubscribed(t, w.b, 0, 0) // no-op warmup
	deadline := time.Now().Add(2 * time.Second)
	for !wantSubstring(w.b.Inspect(), "remote subscribers nodeA") {
		if time.Now().After(deadline) {
			t.Fatalf("peer Inspect missing remote subscription:\n%s", w.b.Inspect())
		}
		time.Sleep(time.Millisecond)
	}
}
