package core

import (
	"sync"
	"sync/atomic"

	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/netstack"
)

// Peer is a statically configured remote INSANE runtime and the per-tech
// addresses of its NIC ports (heterogeneous edge nodes expose different
// subsets of technologies).
type Peer struct {
	Name string
	// Addrs maps each technology the peer supports to the IP of the
	// peer's port for that technology.
	Addrs map[model.Tech]netstack.IPv4
}

// remoteSub records that a peer hosts sinks for a channel, reachable via
// a given technology (carried by the SUB control message).
type remoteSub struct {
	peer *Peer
	tech model.Tech
}

// subTable tracks which peers subscribed to which channels, and resolves
// sender-side destinations. Safe for concurrent use: the control plane
// updates it from polling threads while TX paths read it.
//
//insane:shared
type subTable struct {
	mu sync.RWMutex
	// byChannel maps channel id → peer name → subscription.
	byChannel map[uint32]map[string]remoteSub //insane:guardedby mu=mu
	// byIP resolves a control message's source IP to its peer.
	byIP map[netstack.IPv4]*Peer //insane:guardedby mu=mu
	// snap is the immutable channel→subscriptions view the TX hot path
	// reads; subscribe/unsubscribe publish a fresh copy so readers never
	// lock, copy, or walk the nested maps per packet.
	snap atomic.Pointer[map[uint32][]remoteSub] //insane:guardedby rcu=publishLocked
}

// newSubTable indexes the static peer set.
func newSubTable(peers []Peer) *subTable {
	t := &subTable{
		byChannel: make(map[uint32]map[string]remoteSub),
		byIP:      make(map[netstack.IPv4]*Peer),
	}
	for i := range peers {
		p := &peers[i]
		for _, ip := range p.Addrs {
			t.byIP[ip] = p
		}
	}
	t.publishLocked()
	return t
}

// publishLocked rebuilds the read snapshot; callers hold t.mu (or own
// the table exclusively, as in newSubTable).
func (t *subTable) publishLocked() {
	m := make(map[uint32][]remoteSub, len(t.byChannel))
	for ch, peers := range t.byChannel {
		list := make([]remoteSub, 0, len(peers))
		for _, s := range peers {
			list = append(list, s)
		}
		m[ch] = list
	}
	t.snap.Store(&m)
}

// peerByIP resolves the peer owning an address.
func (t *subTable) peerByIP(ip netstack.IPv4) (*Peer, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	p, ok := t.byIP[ip]
	return p, ok
}

// subscribe records a remote subscription.
func (t *subTable) subscribe(channel uint32, peer *Peer, tech model.Tech) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.byChannel[channel]
	if !ok {
		m = make(map[string]remoteSub)
		t.byChannel[channel] = m
	}
	m[peer.Name] = remoteSub{peer: peer, tech: tech}
	t.publishLocked()
}

// unsubscribe removes a remote subscription.
func (t *subTable) unsubscribe(channel uint32, peer *Peer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if m, ok := t.byChannel[channel]; ok {
		delete(m, peer.Name)
		if len(m) == 0 {
			delete(t.byChannel, channel)
		}
	}
	t.publishLocked()
}

// subscribers returns the immutable subscription list of a channel.
// Callers must not mutate the returned slice: it is shared by every
// reader of the current snapshot.
func (t *subTable) subscribers(channel uint32) []remoteSub {
	return (*t.snap.Load())[channel]
}

// count returns how many peers subscribed to a channel.
func (t *subTable) count(channel uint32) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.byChannel[channel])
}
