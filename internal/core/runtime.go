package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/insane-mw/insane/internal/datapath"
	"github.com/insane-mw/insane/internal/datapath/plugins"
	"github.com/insane-mw/insane/internal/fabric"
	"github.com/insane-mw/insane/internal/mempool"
	"github.com/insane-mw/insane/internal/model"
	"github.com/insane-mw/insane/internal/netstack"
	"github.com/insane-mw/insane/internal/sched"
	"github.com/insane-mw/insane/internal/telemetry"
	"github.com/insane-mw/insane/internal/timebase"
)

// UDPPortBase is the base UDP port of runtime endpoints; each technology
// listens on UDPPortBase + tech id, so heterogeneous peers can address
// each other's planes deterministically.
const UDPPortBase = 46000

// TechPort returns the UDP port a runtime uses for one technology.
func TechPort(t model.Tech) uint16 { return UDPPortBase + uint16(t) }

// Config configures a Runtime.
type Config struct {
	// Name identifies the runtime in logs and warnings.
	Name string
	// Clock drives the TSN gate schedule and idle pacing. Defaults to a
	// RealClock.
	Clock timebase.Clock
	// Testbed selects the calibrated cost environment (default Local).
	Testbed model.Testbed
	// Caps advertises which acceleration technologies this host offers.
	Caps datapath.Caps
	// Ports maps each available technology to its fabric NIC port. A
	// kernel port is mandatory (every host has a kernel stack).
	Ports map[model.Tech]*fabric.Port
	// Resolver is the fabric's IP→MAC table.
	Resolver *netstack.Resolver
	// Peers lists the remote runtimes reachable from this host.
	Peers []Peer
	// Mem configures the memory manager pools.
	Mem mempool.Config
	// GCL is the 802.1Qbv gate control list for time-sensitive streams
	// (default sched.DefaultGCL).
	GCL sched.GCL
	// Tenants declares the runtime's tenants (DESIGN.md §12). Sessions
	// bind to one via ConnectTenant; an empty list runs the runtime in
	// single-tenant mode with zero per-packet tenant overhead.
	Tenants []TenantSpec
	// SharedPoller runs every datapath plugin on a single polling
	// thread (lowest resource usage); the default dedicates one thread
	// per plugin (§5.3: the mapping is configurable).
	SharedPoller bool
	// PollersPerPlugin runs N polling threads per datapath plugin
	// (default 1). The paper's §8 identifies receive-side parallelism —
	// "map the datapath plugins to multiple polling threads" — as the
	// answer to a single sender overflowing a single-core sink; this
	// implements it: endpoint access is serialized, but packet
	// processing and sink delivery proceed in parallel. Ignored when
	// SharedPoller is set.
	PollersPerPlugin int
	// Burst caps the packets moved per polling iteration
	// (default model.DefaultBurst).
	Burst int
	// Logf receives warnings and diagnostics; nil keeps them only in
	// Warnings().
	Logf func(format string, args ...any)
}

// Stats aggregates runtime activity counters.
type Stats struct {
	// TxMessages counts messages sent to remote peers (per-peer sends).
	TxMessages uint64
	// RxMessages counts data messages received from the network.
	RxMessages uint64
	// LocalDeliveries counts shared-memory deliveries to co-located
	// sinks.
	LocalDeliveries uint64
	// NoSinkDrops counts received messages with no subscribed sink.
	NoSinkDrops uint64
	// RingFullDrops counts deliveries dropped on full sink rings.
	RingFullDrops uint64
	// RTCDeliveries counts local deliveries made synchronously by the
	// run-to-completion fast path (a subset of LocalDeliveries).
	RTCDeliveries uint64
	// RTCFallbacks counts Emits on RTC-enabled streams that took the
	// queued path because a precondition failed.
	RTCFallbacks uint64
	// TechDowngrades counts remote sends that used a technology below
	// the stream's mapping because the peer lacks it.
	TechDowngrades uint64
	// Endpoint holds per-technology endpoint statistics.
	Endpoint map[model.Tech]datapath.Stats
}

// techState binds one technology's endpoint with its schedulers.
//
//insane:shared
type techState struct {
	tech  model.Tech        //insane:guardedby immutable after=NewRuntime
	info  model.TechInfo    //insane:guardedby immutable after=NewRuntime
	local netstack.Endpoint //insane:guardedby immutable after=NewRuntime

	// mu serializes endpoint access: pollers own their techs, but
	// cross-technology sends (peer lacks the stream's tech) come from
	// other pollers, and PollersPerPlugin > 1 shares the endpoint. The
	// ep field itself is set once at construction; mu guards the
	// endpoint object's state, not the pointer.
	mu sync.Mutex
	ep datapath.Endpoint //insane:guardedby immutable after=NewRuntime

	// schedMu guards the schedulers when several pollers serve this
	// plugin (§8's multi-threaded datapath): the WDRR/TAS pointers are
	// construction-time constants, their queue state is what the lock
	// protects.
	schedMu sync.Mutex
	wdrr    *sched.WDRR //insane:guardedby immutable after=NewRuntime
	tas     *sched.TAS  //insane:guardedby immutable after=NewRuntime

	// consumers is how many polling threads drain this technology's TX
	// lanes, fixed at runtime construction. Exactly 1 is what makes a
	// single-producer lane eligible for the SPSC ring.
	consumers int //insane:guardedby immutable after=NewRuntime
}

// Runtime is the INSANE runtime instance of one host.
//
//insane:shared
type Runtime struct {
	cfg   Config                    //insane:guardedby immutable after=NewRuntime
	name  string                    //insane:guardedby immutable after=NewRuntime
	clock timebase.Clock            //insane:guardedby immutable after=NewRuntime
	tb    model.Testbed             //insane:guardedby immutable after=NewRuntime
	mm    *mempool.Manager          //insane:guardedby immutable after=NewRuntime
	rc    model.RuntimeCosts        //insane:guardedby immutable after=NewRuntime
	subs  *subTable                 //insane:guardedby immutable after=NewRuntime
	techs map[model.Tech]*techState //insane:guardedby immutable after=NewRuntime
	burst int                       //insane:guardedby immutable after=NewRuntime

	// tenants is the immutable tenant registry (index 0 = the implicit
	// default tenant); nil in single-tenant mode.
	tenants      []*tenant          //insane:guardedby immutable after=NewRuntime
	tenantByName map[string]*tenant //insane:guardedby immutable after=NewRuntime

	mu     sync.RWMutex
	conns  map[mempool.Owner]*ClientConn //insane:guardedby mu=mu
	sinks  map[uint32][]*SinkHandle      //insane:guardedby mu=mu
	warned []string                      //insane:guardedby mu=mu
	// connList is a cached snapshot of conns for the pollers' hot loop;
	// rebuilt whenever a session connects or disconnects.
	connList []*ClientConn //insane:guardedby mu=mu

	// topoEpoch versions the (conn, tech)→TX-ring topology. It is bumped
	// after every mutation (session connect/disconnect, lazy ring
	// creation) so pollers rebuild their txSnap caches only when the
	// topology actually moved, instead of locking c.mu per conn per pass.
	topoEpoch atomic.Uint64 //insane:guardedby atomic

	// sinkSnap is the immutable channel→sinks dispatch table the pollers
	// read (RCU-style: registerSink/unregisterSink publish a fresh copy,
	// readers never lock or copy). r.sinks under r.mu stays the mutable
	// source of truth.
	sinkSnap atomic.Pointer[map[uint32][]*SinkHandle] //insane:guardedby rcu=publishSinksLocked

	// envPool backs the pollers' packet-envelope free lists.
	envPool *mempool.CachePool[*pktEnv] //insane:guardedby immutable after=NewRuntime

	nextConnID   atomic.Int32  //insane:guardedby atomic
	nextStreamID atomic.Uint64 //insane:guardedby atomic

	// tel is the runtime's telemetry domain: one shard per polling
	// thread plus a client-side stripe (DESIGN.md §8). Every activity
	// counter the runtime used to keep ad hoc lives here now, so Stats,
	// Inspect and the Prometheus exporter read one substrate.
	tel *telemetry.Telemetry //insane:guardedby immutable after=NewRuntime

	pollers []*poller   //insane:guardedby immutable after=NewRuntime
	stopped atomic.Bool //insane:guardedby atomic
	wg      sync.WaitGroup
}

// poller is one polling thread serving one or more datapaths (§5.3).
//
//insane:shared
type poller struct {
	states []*techState  //insane:guardedby immutable after=NewRuntime
	kick   chan struct{} //insane:guardedby immutable after=NewRuntime
	stop   chan struct{} //insane:guardedby immutable after=NewRuntime
	// batch is the poller's scratch dequeue buffer (no per-iteration
	// allocation on the hot path).
	batch []*datapath.Packet //insane:guardedby confined owner=pollLoop
	// toks is the scratch buffer for batched TX-ring pops.
	toks []txToken //insane:guardedby confined owner=pollLoop
	// snaps caches the TX-ring topology per served techState (parallel
	// to states), rebuilt only when the runtime's topoEpoch moves.
	snaps []txSnap //insane:guardedby confined owner=pollLoop
	// envs is this poller's private packet-envelope free list (DPDK's
	// per-lcore mempool cache); spills and refills go through the
	// runtime-wide shared ring, so envelopes may migrate between pollers.
	envs *mempool.Cache[*pktEnv] //insane:guardedby immutable after=NewRuntime
	// sendPkt/sendVec are the scratch destination-specific packet copy
	// and send vector for sendToPeer (plugin Sends are synchronous).
	sendPkt datapath.Packet     //insane:guardedby confined owner=pollLoop
	sendVec [1]*datapath.Packet //insane:guardedby confined owner=pollLoop
	// shard is this poller's private telemetry slab; every hot-path
	// counter bump and histogram observation lands here, so steady-state
	// recording never bounces a cache line between pollers.
	shard *telemetry.Shard //insane:guardedby immutable after=NewRuntime
	// loops counts polling iterations; session close uses it to wait for
	// full passes so in-flight tokens drain before slots are reclaimed.
	loops atomic.Uint64 //insane:guardedby atomic
}

// NewRuntime opens the endpoints for every available technology and
// starts the polling threads.
func NewRuntime(cfg Config) (*Runtime, error) {
	if cfg.Ports[model.TechKernelUDP] == nil {
		return nil, errors.New("core: a kernel UDP port is mandatory")
	}
	if cfg.Resolver == nil {
		return nil, errors.New("core: resolver required")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = timebase.NewRealClock()
	}
	tb := cfg.Testbed
	if tb.Name == "" {
		tb = model.Local
	}
	gcl := cfg.GCL
	if gcl == nil {
		gcl = sched.DefaultGCL()
	}
	burst := cfg.Burst
	if burst <= 0 {
		burst = model.DefaultBurst
	}
	if burst > model.MaxBurst {
		burst = model.MaxBurst
	}
	mm, err := mempool.NewManager(cfg.Mem)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	tenants, byName, err := buildTenants(cfg.Tenants)
	if err != nil {
		return nil, err
	}

	r := &Runtime{
		cfg:   cfg,
		name:  cfg.Name,
		clock: clock,
		tb:    tb,
		mm:    mm,
		rc:    model.DefaultRuntimeCosts(),
		subs:  newSubTable(cfg.Peers),
		techs: make(map[model.Tech]*techState),
		burst: burst,
		conns: make(map[mempool.Owner]*ClientConn),
		sinks: make(map[uint32][]*SinkHandle),

		tenants:      tenants,
		tenantByName: byName,
	}
	r.publishSinksLocked()
	r.envPool, err = mempool.NewCachePool(envSharedCap, func() *pktEnv { return new(pktEnv) })
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	alloc := func(size int) (mempool.SlotID, []byte, error) {
		return mm.Get(size, mempool.NoOwner)
	}
	for _, tech := range cfg.Caps.List() {
		port := cfg.Ports[tech]
		if port == nil {
			continue // capability advertised but no port wired: skip
		}
		plugin, err := plugins.ByTech(tech)
		if err != nil {
			return nil, err
		}
		local := netstack.Endpoint{IP: port.IP(), Port: TechPort(tech)}
		ep, err := plugin.Open(datapath.Config{
			Port:     port,
			Resolver: cfg.Resolver,
			Local:    local,
			Alloc:    alloc,
			Testbed:  tb,
			Burst:    burst,
		})
		if err != nil {
			return nil, fmt.Errorf("core: open %s: %w", tech, err)
		}
		tas, err := sched.NewTAS(gcl)
		if err != nil {
			return nil, err
		}
		// Best-effort traffic goes through the WDRR tenant scheduler. Gate
		// awareness (holding best-effort packets through protected windows)
		// is armed only in multi-tenant mode: it is the timing-isolation
		// guarantee of §12, and single-tenant runtimes should not pay the
		// default GCL's protected-window latency on plain traffic.
		var wdrrGCL sched.GCL
		if len(tenants) > 0 {
			wdrrGCL = gcl
		}
		wdrr, err := sched.NewWDRR(tenantWeights(tenants), wdrrGCL)
		if err != nil {
			return nil, err
		}
		r.techs[tech] = &techState{
			tech:  tech,
			info:  plugin.Info(),
			local: local,
			ep:    ep,
			wdrr:  wdrr,
			tas:   tas,
		}
	}

	// Thread mapping (§5.3): one polling thread per datapath plugin by
	// default, a single shared thread when resource consumption is
	// paramount, or several threads per plugin for receive-side
	// parallelism (§8).
	var groups [][]*techState
	if cfg.SharedPoller {
		all := make([]*techState, 0, len(r.techs))
		for _, st := range r.techs {
			all = append(all, st)
		}
		groups = [][]*techState{all}
	} else {
		per := cfg.PollersPerPlugin
		if per < 1 {
			per = 1
		}
		for _, st := range r.techs {
			for i := 0; i < per; i++ {
				groups = append(groups, []*techState{st})
			}
		}
	}
	// Record how many pollers drain each technology: the TX-lane SPSC
	// election (lane) needs the consumer count to be provably 1.
	for _, g := range groups {
		for _, st := range g {
			st.consumers++
		}
	}
	// One telemetry shard per polling thread (hot-path writers stay on
	// private cache lines) plus a stripe for client-side handles.
	r.tel = telemetry.New(len(groups) + clientTelemetryShards)
	for i, g := range groups {
		p := &poller{
			states: g,
			kick:   make(chan struct{}, 1),
			stop:   make(chan struct{}),
			batch:  make([]*datapath.Packet, burst),
			toks:   make([]txToken, burst),
			snaps:  make([]txSnap, len(g)),
			envs:   r.envPool.NewCache(envLocalCap),
			shard:  r.tel.Shard(i),
		}
		r.pollers = append(r.pollers, p)
		r.wg.Add(1)
		//insane:goroutine owner=Runtime stop=Close
		go r.pollLoop(p)
	}
	return r, nil
}

// clientTelemetryShards is how many extra telemetry shards back the
// client-side handles (sources and sinks, striped round-robin).
const clientTelemetryShards = 4

// Envelope free-list sizing: the local cap absorbs a few bursts of
// in-flight packets per poller; the shared ring rebalances envelopes
// that were enqueued by one poller and recycled by another (§8's
// multi-threaded datapath). Misses just hit the allocator.
const (
	envSharedCap = 1024
	envLocalCap  = 256
)

// Name returns the runtime's configured name.
func (r *Runtime) Name() string { return r.name }

// Mem exposes the runtime memory manager (used by tests and benchmarks).
func (r *Runtime) Mem() *mempool.Manager { return r.mm }

// Testbed returns the cost environment the runtime runs in.
func (r *Runtime) Testbed() model.Testbed { return r.tb }

// EffectiveCaps reports the technologies with an open endpoint.
func (r *Runtime) EffectiveCaps() datapath.Caps {
	var caps datapath.Caps
	for t := range r.techs {
		switch t {
		case model.TechDPDK:
			caps.DPDK = true
		case model.TechXDP:
			caps.XDP = true
		case model.TechRDMA:
			caps.RDMA = true
		}
	}
	return caps
}

// Techs lists the open technologies in Table 1 order.
func (r *Runtime) Techs() []model.Tech {
	var out []model.Tech
	for _, t := range []model.Tech{model.TechKernelUDP, model.TechXDP, model.TechDPDK, model.TechRDMA} {
		if _, ok := r.techs[t]; ok {
			out = append(out, t)
		}
	}
	return out
}

// Connect opens a client session with the runtime (init_session) under
// the default tenant.
func (r *Runtime) Connect() (*ClientConn, error) {
	return r.ConnectTenant("")
}

// ConnectTenant opens a client session bound to a declared tenant; the
// empty name selects the implicit default tenant (no quotas, weight 1).
func (r *Runtime) ConnectTenant(name string) (*ClientConn, error) {
	if r.stopped.Load() {
		return nil, ErrClosed
	}
	var ten *tenant
	if name != "" {
		t, ok := r.tenantByName[name]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
		}
		ten = t
	}
	c := &ClientConn{
		rt:      r,
		id:      mempool.Owner(r.nextConnID.Add(1)),
		ten:     ten,
		lanes:   make(map[model.Tech]*txLane),
		streams: make(map[uint64]*StreamHandle),
	}
	r.mu.Lock()
	r.conns[c.id] = c
	r.rebuildConnListLocked()
	r.topoEpoch.Add(1)
	r.mu.Unlock()
	return c, nil
}

// rebuildConnListLocked refreshes the pollers' session snapshot; callers
// hold r.mu.
func (r *Runtime) rebuildConnListLocked() {
	list := make([]*ClientConn, 0, len(r.conns))
	for _, c := range r.conns {
		list = append(list, c)
	}
	r.connList = list
}

// dropConn removes a closed session and reclaims its memory: first the
// TX tokens still queued in the session's lanes (each carries a tenant
// in-flight charge and a slot reference the poller would have settled),
// then any slot the session still owns.
func (r *Runtime) dropConn(c *ClientConn) {
	r.mu.Lock()
	delete(r.conns, c.id)
	r.rebuildConnListLocked()
	r.topoEpoch.Add(1)
	r.mu.Unlock()
	// Pollers pick up the shrunk session list on their next pass; after
	// two full passes none can still be draining this session's lanes,
	// so the SPSC remnant may be popped from this goroutine.
	r.waitPollerPasses(2, timebase.Wall().Add(50*time.Millisecond))
	if n := r.reclaimLanes(c); n > 0 {
		r.tel.AssignShard().Add(telemetry.CtrTxReclaims, uint64(n))
		r.warnf("session %d: reclaimed %d undrained TX tokens on detach", c.id, n)
	}
	if n := r.mm.ReleaseOwner(c.id); n > 0 {
		r.warnf("session %d: reclaimed %d leaked slots on detach", c.id, n)
	}
}

// reclaimLanes settles every TX token left in a detached session's
// lanes — the balance the poller would have restored had it drained
// them: uncharge the tenant's in-flight TX token and release the slot.
func (r *Runtime) reclaimLanes(c *ClientConn) int {
	c.mu.Lock()
	lanes := make([]*txLane, 0, len(c.lanes))
	for _, l := range c.lanes {
		lanes = append(lanes, l)
	}
	c.mu.Unlock()
	n := 0
	for _, l := range lanes {
		for {
			tok, ok := l.pop()
			if !ok {
				break
			}
			if tok.ten != nil {
				tok.ten.unchargeTX()
			}
			r.mm.Release(tok.slot)
			n++
		}
	}
	return n
}

// SubscriberCount reports how many remote peers subscribed to a channel
// (useful to avoid startup races in tests and examples).
func (r *Runtime) SubscriberCount(channel uint32) int {
	return r.subs.count(channel)
}

// Warnings returns the warnings accumulated so far (e.g. QoS fallback
// decisions, §5.2).
func (r *Runtime) Warnings() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.warned...)
}

// Stats returns a snapshot of the runtime counters.
func (r *Runtime) Stats() Stats {
	s := Stats{
		TxMessages:      r.tel.Counter(telemetry.CtrTxMessages),
		RxMessages:      r.tel.Counter(telemetry.CtrRxMessages),
		LocalDeliveries: r.tel.Counter(telemetry.CtrLocalDeliveries),
		NoSinkDrops:     r.tel.Counter(telemetry.CtrNoSinkDrops),
		RingFullDrops:   r.tel.Counter(telemetry.CtrRingFullDrops),
		RTCDeliveries:   r.tel.Counter(telemetry.CtrRTCDeliveries),
		RTCFallbacks:    r.tel.Counter(telemetry.CtrRTCFallbacks),
		TechDowngrades:  r.tel.Counter(telemetry.CtrTechDowngrades),
		Endpoint:        make(map[model.Tech]datapath.Stats, len(r.techs)),
	}
	for t, st := range r.techs {
		s.Endpoint[t] = st.ep.Stats()
	}
	return s
}

// Telemetry exposes the runtime's telemetry domain (exporters, tests).
func (r *Runtime) Telemetry() *telemetry.Telemetry { return r.tel }

// MetricsSnapshot merges every telemetry shard and samples the gauges
// owned by other components (memory pools, envelope caches, scheduler
// queues). It allocates and locks; call it from the control path only.
func (r *Runtime) MetricsSnapshot() *telemetry.Snapshot {
	s := r.tel.Snapshot()

	ms := r.mm.Stats()
	classes := r.mm.Classes()
	mp := telemetry.MempoolSnapshot{
		Gets:      ms.Gets,
		Failures:  ms.Failures,
		Releases:  ms.Releases,
		FreeSlots: r.mm.FreeSlots(),
		CapSlots:  make([]int, len(classes)),
		SlotSizes: make([]int, len(classes)),
	}
	for i, c := range classes {
		mp.CapSlots[i] = c.Slots
		mp.SlotSizes[i] = c.SlotSize
	}
	s.Mempool = mp

	for _, p := range r.pollers {
		cs := p.envs.Stats()
		s.EnvCache.Hits += cs.Hits
		s.EnvCache.Refills += cs.Refills
		s.EnvCache.Misses += cs.Misses
		s.EnvCache.Recycles += cs.Recycles
		s.EnvCache.Drops += cs.Drops
	}

	for _, st := range r.techs {
		st.schedMu.Lock()
		s.SchedQueueDepth += uint64(st.wdrr.Pending() + st.tas.Pending())
		st.schedMu.Unlock()
	}
	return s
}

// Close stops the polling threads and releases the endpoints.
func (r *Runtime) Close() error {
	if !r.stopped.CompareAndSwap(false, true) {
		return nil
	}
	for _, p := range r.pollers {
		close(p.stop)
	}
	r.wg.Wait()
	for _, st := range r.techs {
		_ = st.ep.Close()
	}
	return nil
}

// warnf records (and optionally logs) a warning.
func (r *Runtime) warnf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	r.mu.Lock()
	r.warned = append(r.warned, msg)
	r.mu.Unlock()
	if r.cfg.Logf != nil {
		r.cfg.Logf("insane[%s]: %s", r.name, msg)
	}
}

// waitPollerPasses blocks until every polling thread advances by at least
// n iterations (or the deadline passes), kicking them awake.
func (r *Runtime) waitPollerPasses(n uint64, deadline time.Time) {
	start := make([]uint64, len(r.pollers))
	for i, p := range r.pollers {
		start[i] = p.loops.Load()
	}
	for timebase.Wall().Before(deadline) {
		if r.stopped.Load() {
			return
		}
		done := true
		for i, p := range r.pollers {
			if p.loops.Load() < start[i]+n {
				done = false
				break
			}
		}
		if done {
			return
		}
		r.kickTX()
		time.Sleep(20 * time.Microsecond)
	}
}

// kickTX wakes idle pollers after an Emit.
func (r *Runtime) kickTX() {
	//insane:bounded by=one poller per technology, fixed at runtime construction
	for _, p := range r.pollers {
		select {
		case p.kick <- struct{}{}:
		default:
		}
	}
}

// registerSink adds a sink to the channel dispatch table and announces
// the subscription to all peers.
func (r *Runtime) registerSink(k *SinkHandle) error {
	r.mu.Lock()
	r.sinks[k.channel] = append(r.sinks[k.channel], k)
	r.publishSinksLocked()
	r.mu.Unlock()
	return r.broadcastControl(kindSub, k.channel, k.stream.tech)
}

// unregisterSink removes a sink; the last sink of a channel withdraws the
// remote subscription.
func (r *Runtime) unregisterSink(k *SinkHandle) {
	r.mu.Lock()
	list := r.sinks[k.channel]
	for i, s := range list {
		if s == k {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(r.sinks, k.channel)
	} else {
		r.sinks[k.channel] = list
	}
	last := len(list) == 0
	r.publishSinksLocked()
	r.mu.Unlock()
	if last && !r.stopped.Load() {
		_ = r.broadcastControl(kindUnsub, k.channel, k.stream.tech)
	}
}

// publishSinksLocked swaps in a fresh immutable copy of the dispatch
// table; callers hold r.mu. Readers of the old snapshot keep a
// consistent (if momentarily stale) view — the same grace-period
// semantics the kernel's RCU gives its readers.
func (r *Runtime) publishSinksLocked() {
	m := make(map[uint32][]*SinkHandle, len(r.sinks))
	for ch, list := range r.sinks {
		m[ch] = append([]*SinkHandle(nil), list...)
	}
	r.sinkSnap.Store(&m)
}

// sinksFor returns the immutable sink list of a channel. Callers must
// not mutate the returned slice: it is shared by every reader of the
// current snapshot.
func (r *Runtime) sinksFor(channel uint32) []*SinkHandle {
	return (*r.sinkSnap.Load())[channel]
}

// broadcastControl sends a SUB/UNSUB message for a channel to every peer
// over the always-available kernel plane.
func (r *Runtime) broadcastControl(kind msgKind, channel uint32, tech model.Tech) error {
	st := r.techs[model.TechKernelUDP]
	for i := range r.cfg.Peers {
		peer := &r.cfg.Peers[i]
		ip, ok := peer.Addrs[model.TechKernelUDP]
		if !ok {
			continue
		}
		slot, buf, err := r.mm.Get(MsgHeadroom, mempool.NoOwner)
		if err != nil {
			return err
		}
		encodeHeader(buf[headroomOffset:], header{
			kind:    kind,
			channel: channel,
			aux:     uint8(tech),
		})
		pkt := &datapath.Packet{
			Slot: slot, Buf: buf,
			Off: headroomOffset, Len: HeaderLen,
			Src: st.local,
		}
		st.mu.Lock()
		_, err = st.ep.Send([]*datapath.Packet{pkt}, netstack.Endpoint{IP: ip, Port: TechPort(model.TechKernelUDP)})
		st.mu.Unlock()
		_ = r.mm.Release(slot)
		if err != nil {
			return fmt.Errorf("core: control send to %s: %w", peer.Name, err)
		}
	}
	return nil
}
