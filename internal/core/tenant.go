// Tenant registry: the runtime half of multi-tenant QoS isolation
// (DESIGN.md §12). A tenant is a declared principal with its own WDRR
// weight, mempool slot budget, in-flight TX token cap, QoS class
// ceiling, and telemetry domain. Sessions bind to a tenant at
// ConnectTenant; every quota decision afterwards is a couple of atomic
// operations against the session's cached *tenant — the registry itself
// is immutable after NewRuntime.
//
// The default tenant (empty name) is deliberately nil everywhere: a
// single-tenant runtime carries zero per-packet tenant overhead, which
// is what keeps the steady-state allocation and latency gates unchanged.

package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/insane-mw/insane/internal/mempool"
	"github.com/insane-mw/insane/internal/telemetry"
)

// Tenant admission errors.
var (
	// ErrTenantQuota is returned by Emit (TX token cap) and GetBuffer
	// (slot budget, via mempool.ErrQuota) when the session's tenant is at
	// its limit. A static sentinel: quota rejection is a hot-path event.
	ErrTenantQuota = errors.New("core: tenant quota exhausted")
	// ErrUnknownTenant is returned by ConnectTenant for a name that was
	// not declared in Config.Tenants.
	ErrUnknownTenant = errors.New("core: unknown tenant")
)

// TenantSpec declares one tenant in Config.Tenants.
type TenantSpec struct {
	// Name identifies the tenant; sessions bind to it by name. Must be
	// non-empty and unique ("" is the implicit default tenant).
	Name string
	// Weight is the tenant's WDRR share of best-effort egress
	// (default 1).
	Weight int
	// MemSlots caps how many mempool slots the tenant's sessions may
	// hold at once (0 = unlimited).
	MemSlots int
	// TxTokens caps the tenant's in-flight TX tokens — emitted but not
	// yet dispatched messages (0 = unlimited).
	TxTokens int
	// MaxClass ceilings the 802.1Qbv traffic class the tenant's streams
	// may request (0 = unrestricted; classes above it are clamped with a
	// warning, mirroring the QoS mapper's fallback idiom).
	MaxClass uint8
}

// tenant is the runtime-internal record of one declared tenant. All
// fields except inflight are immutable after construction.
//
//insane:shared
type tenant struct {
	name  string //insane:guardedby immutable after=buildTenants
	index int    //insane:guardedby immutable after=buildTenants
	// spec is the declared tenant configuration.
	spec TenantSpec //insane:guardedby immutable after=buildTenants

	// budget partitions the mempool (nil only for the default tenant;
	// declared tenants always carry one so occupancy gauges work).
	budget *mempool.Budget //insane:guardedby immutable after=buildTenants
	// inflight counts emitted-but-not-dispatched TX tokens against
	// spec.TxTokens.
	inflight atomic.Int64 //insane:guardedby atomic
	// tel/shard are the tenant's private telemetry domain: one shard is
	// enough because only client goroutines of this tenant write to it.
	tel   *telemetry.Telemetry //insane:guardedby immutable after=buildTenants
	shard *telemetry.Shard     //insane:guardedby immutable after=buildTenants
}

// chargeTX reserves one in-flight TX token, reporting false at the cap.
// Same optimistic add-then-undo as mempool.Budget.TryCharge.
//
//insane:hotpath
//insane:acquire resource=tenant-tx on=true
func (t *tenant) chargeTX() bool {
	if t.spec.TxTokens <= 0 {
		return true
	}
	if t.inflight.Add(1) > int64(t.spec.TxTokens) {
		t.inflight.Add(-1)
		return false
	}
	return true
}

// unchargeTX returns one in-flight token (dispatch or failed push).
//
//insane:hotpath
//insane:release resource=tenant-tx
func (t *tenant) unchargeTX() {
	if t.spec.TxTokens > 0 {
		t.inflight.Add(-1)
	}
}

// buildTenants validates the declared specs and constructs the registry.
func buildTenants(specs []TenantSpec) ([]*tenant, map[string]*tenant, error) {
	if len(specs) == 0 {
		return nil, nil, nil
	}
	// Index 0 is reserved for the default tenant so Packet.Tenant zero
	// values route to the default WDRR queue.
	tenants := make([]*tenant, 0, len(specs)+1)
	def := &tenant{name: "", index: 0, spec: TenantSpec{Weight: 1}}
	tenants = append(tenants, def)
	byName := make(map[string]*tenant, len(specs))
	for _, sp := range specs {
		if sp.Name == "" {
			return nil, nil, errors.New("core: tenant name must be non-empty")
		}
		if _, dup := byName[sp.Name]; dup {
			return nil, nil, fmt.Errorf("core: duplicate tenant %q", sp.Name)
		}
		if sp.Weight < 1 {
			sp.Weight = 1
		}
		t := &tenant{
			name:   sp.Name,
			index:  len(tenants),
			spec:   sp,
			budget: mempool.NewBudget(sp.MemSlots),
			tel:    telemetry.New(1),
		}
		t.shard = t.tel.Shard(0)
		byName[sp.Name] = t
		tenants = append(tenants, t)
	}
	return tenants, byName, nil
}

// tenantWeights returns the WDRR weight vector, index-aligned with the
// registry (nil when no tenants are declared → single-queue WDRR).
func tenantWeights(tenants []*tenant) []int {
	if len(tenants) == 0 {
		return nil
	}
	w := make([]int, len(tenants))
	for i, t := range tenants {
		w[i] = t.spec.Weight
	}
	return w
}

// TenantSnapshots samples every declared tenant's telemetry and quota
// gauges (control path; empty in single-tenant mode).
func (r *Runtime) TenantSnapshots() []telemetry.TenantSnapshot {
	if len(r.tenants) <= 1 {
		return nil
	}
	out := make([]telemetry.TenantSnapshot, 0, len(r.tenants)-1)
	for _, t := range r.tenants[1:] { // skip the default tenant
		out = append(out, telemetry.TenantSnapshot{
			Tenant:        t.name,
			Weight:        t.spec.Weight,
			Snap:          t.tel.Snapshot(),
			MemUsed:       t.budget.Used(),
			MemLimit:      t.budget.Limit(),
			Inflight:      t.inflight.Load(),
			InflightLimit: int64(t.spec.TxTokens),
		})
	}
	return out
}

// TenantNames lists the declared tenant names (Inspect, tests).
func (r *Runtime) TenantNames() []string {
	if len(r.tenants) <= 1 {
		return nil
	}
	out := make([]string, 0, len(r.tenants)-1)
	for _, t := range r.tenants[1:] {
		out = append(out, t.name)
	}
	return out
}
