package core

import (
	"fmt"
	"sort"
	"strings"
)

// Inspect renders a human-readable snapshot of the runtime's state:
// technologies, polling threads, sessions, channel subscriptions (local
// and remote), memory pools and traffic counters. Operators of a
// Network-Acceleration-as-a-Service deployment (§8) need exactly this
// view; cmd/lunar-demo and tests use it too.
func (r *Runtime) Inspect() string {
	var b strings.Builder
	fmt.Fprintf(&b, "runtime %q (testbed %s)\n", r.name, r.tb.Name)

	fmt.Fprintf(&b, "  datapaths (%d polling threads):\n", len(r.pollers))
	for _, tech := range r.Techs() {
		st := r.techs[tech]
		es := st.ep.Stats()
		fmt.Fprintf(&b, "    %-10s %s  tx=%d rx=%d drops=%d\n",
			tech, st.local, es.TxPackets, es.RxPackets, es.Drops)
	}

	r.mu.RLock()
	fmt.Fprintf(&b, "  sessions: %d\n", len(r.conns))
	channels := make([]int, 0, len(r.sinks))
	for ch := range r.sinks {
		channels = append(channels, int(ch))
	}
	sort.Ints(channels)
	for _, ch := range channels {
		fmt.Fprintf(&b, "    channel %d: %d local sinks\n", ch, len(r.sinks[uint32(ch)]))
	}
	r.mu.RUnlock()

	r.subs.mu.RLock()
	remotes := make([]int, 0, len(r.subs.byChannel))
	for ch := range r.subs.byChannel {
		remotes = append(remotes, int(ch))
	}
	sort.Ints(remotes)
	for _, ch := range remotes {
		m := r.subs.byChannel[uint32(ch)]
		names := make([]string, 0, len(m))
		for name, sub := range m {
			names = append(names, fmt.Sprintf("%s(%s)", name, sub.tech))
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "    channel %d: remote subscribers %s\n", ch, strings.Join(names, ", "))
	}
	r.subs.mu.RUnlock()

	free := r.mm.FreeSlots()
	ms := r.mm.Stats()
	fmt.Fprintf(&b, "  memory pools: free=%v gets=%d releases=%d failures=%d\n",
		free, ms.Gets, ms.Releases, ms.Failures)

	s := r.Stats()
	fmt.Fprintf(&b, "  traffic: tx=%d rx=%d local=%d nosink=%d ringfull=%d downgrades=%d\n",
		s.TxMessages, s.RxMessages, s.LocalDeliveries, s.NoSinkDrops,
		s.RingFullDrops, s.TechDowngrades)
	if w := len(r.Warnings()); w > 0 {
		fmt.Fprintf(&b, "  warnings: %d\n", w)
	}
	return b.String()
}
