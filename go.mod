module github.com/insane-mw/insane

go 1.22
