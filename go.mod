module github.com/insane-mw/insane

go 1.22

// The insanevet analyzers (internal/lint) are written against the
// golang.org/x/tools go/analysis API, pinned at v0.24.0. This build
// environment has no module-proxy access, so instead of a require
// directive the needed subset (analysis, multichecker, analysistest,
// a packages-style loader) is vendored as internal/lint/* with
// identical semantics. No other dependencies: stdlib only.
