// Package repro is the root of the INSANE reproduction: a pure-Go,
// repository-scale implementation of "INSANE: A Unified Middleware for
// QoS-aware Network Acceleration in Edge Cloud Computing" (Rosa, Garbugli,
// Corradi, Bellavista — Middleware '23).
//
// The public middleware API lives in the insane package; the two
// INSANE-based applications of §7 live under lunar; the substrates
// (virtual fabric, datapath plugins, memory manager, schedulers, cost
// models, simulator) live under internal. See README.md for the layout,
// DESIGN.md for the system inventory and substitution rationale, and
// EXPERIMENTS.md for paper-vs-measured results.
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation:
//
//	go test -bench=. -benchmem .
package repro
