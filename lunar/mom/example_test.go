package mom_test

import (
	"fmt"
	"time"

	"github.com/insane-mw/insane/insane"
	"github.com/insane-mw/insane/lunar/mom"
)

// Example shows the two-primitive Lunar MoM surface the paper highlights:
// lunar_publish / lunar_subscribe, with INSANE doing everything else.
func Example() {
	cluster, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{
			{Name: "publisher", DPDK: true},
			{Name: "subscriber", DPDK: true},
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer cluster.Close()

	sub, _ := mom.New(cluster.Node("subscriber"), insane.Options{Datapath: insane.Fast})
	defer sub.Close()
	done := make(chan struct{})
	sub.Subscribe("plant/line1/temp", func(payload []byte, m mom.Meta) {
		fmt.Printf("got %s on %s\n", payload, m.Topic)
		close(done)
	})

	pub, _ := mom.New(cluster.Node("publisher"), insane.Options{Datapath: insane.Fast})
	defer pub.Close()
	for cluster.Node("publisher").SubscriberCount(mom.TopicChannel("plant/line1/temp")) == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	pub.Publish("plant/line1/temp", []byte("23.5C"))
	<-done
	// Output:
	// got 23.5C on plant/line1/temp
}
