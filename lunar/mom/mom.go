// Package mom implements Lunar MoM, the decentralized Message-oriented
// Middleware the paper builds on the INSANE API in ~135 lines of C (§7.1).
//
// The mapping to INSANE primitives is the one the paper describes:
// topics hash to channel ids, lunar_publish opens a source on the topic's
// channel on first use and emits zero-copy buffers, lunar_subscribe opens
// a sink with a callback. Message dissemination, technology selection and
// fanout are entirely INSANE's business — that is the point.
package mom

import (
	"errors"
	"hash/fnv"
	"sync"
	"time"

	"github.com/insane-mw/insane/insane"
)

// momOverhead is the small per-side cost Lunar MoM adds on top of raw
// INSANE (topic hashing and callback dispatch); the paper measures it as
// ns-scale (§7.1).
const momOverhead = 40 * time.Nanosecond

// ErrClosed is returned on operations against a closed MoM.
var ErrClosed = errors.New("mom: closed")

// Meta carries per-message delivery metadata to subscribers.
type Meta struct {
	Topic string
	// Latency is the one-way virtual latency including MoM overhead.
	Latency time.Duration
	// Stages splits Latency into INSANE's pipeline stages; the MoM
	// overhead is accounted to Processing.
	Stages insane.Stages
}

// Handler consumes one publication. The payload is only valid during the
// call: copy it to keep it.
type Handler func(payload []byte, meta Meta)

// MoM is a decentralized publisher/subscriber endpoint.
//insane:shared
type MoM struct {
	sess   *insane.Session //insane:guardedby immutable after=New
	stream *insane.Stream  //insane:guardedby immutable after=New

	mu      sync.Mutex
	sources map[uint32]*insane.Source //insane:guardedby mu=mu
	sinks   []*insane.Sink            //insane:guardedby mu=mu
	closed  bool                      //insane:guardedby mu=mu
}

// TopicChannel hashes a topic name to its INSANE channel id, as the paper
// prescribes ("the topic name is hashed to obtain the topic id").
func TopicChannel(topic string) int {
	h := fnv.New32a()
	h.Write([]byte(topic))
	// Keep the channel positive and out of the low range apps use by
	// convention for direct channel ids.
	return int(h.Sum32()&0x7FFFFFFF | 0x1000)
}

// New opens a MoM endpoint on a node. The QoS options select the stream's
// acceleration level exactly as for any INSANE stream: Lunar fast is a
// MoM over {Datapath: Fast}, Lunar slow over {Datapath: Slow}.
func New(node *insane.Node, opts insane.Options) (*MoM, error) {
	sess, err := node.InitSession()
	if err != nil {
		return nil, err
	}
	stream, err := sess.CreateStreamOpts(insane.WithOptions(opts))
	if err != nil {
		sess.Close()
		return nil, err
	}
	return &MoM{
		sess:    sess,
		stream:  stream,
		sources: make(map[uint32]*insane.Source),
	}, nil
}

// Technology names the network technology the MoM's stream mapped to.
func (m *MoM) Technology() string { return m.stream.Technology() }

// Publish sends payload on a topic (lunar_publish with a pre-filled
// buffer). The first publication on a topic opens its source.
func (m *MoM) Publish(topic string, payload []byte) error {
	return m.PublishInto(topic, len(payload), func(dst []byte) int {
		return copy(dst, payload)
	})
}

// PublishInto is the zero-copy variant matching the paper's callback
// style: it borrows a buffer of the given size and lets fill write the
// payload directly into shared memory, returning the bytes written.
func (m *MoM) PublishInto(topic string, size int, fill func(dst []byte) int) error {
	src, err := m.source(topic)
	if err != nil {
		return err
	}
	buf, err := src.GetBuffer(size)
	if err != nil {
		return err
	}
	n := fill(buf.Payload)
	if n < 0 || n > size {
		src.Abort(buf)
		return errors.New("mom: fill callback wrote out of bounds")
	}
	buf.AddProcessing(momOverhead)
	for {
		_, err := src.Emit(buf, n)
		if err == nil {
			return nil
		}
		if !errors.Is(err, insane.ErrBackpressure) {
			src.Abort(buf)
			return err
		}
	}
}

// source returns (opening if needed) the source for a topic.
func (m *MoM) source(topic string) (*insane.Source, error) {
	ch := uint32(TopicChannel(topic))
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if s, ok := m.sources[ch]; ok {
		return s, nil
	}
	s, err := m.stream.CreateSource(int(ch))
	if err != nil {
		return nil, err
	}
	m.sources[ch] = s
	return s, nil
}

// Subscribe registers a handler for a topic (lunar_subscribe); messages
// are dispatched from the sink's callback goroutine.
func (m *MoM) Subscribe(topic string, handler Handler) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	m.mu.Unlock()

	sink, err := m.stream.CreateSink(TopicChannel(topic), func(msg *insane.Message) {
		st := msg.Stages()
		st.Processing += momOverhead
		handler(msg.Payload, Meta{
			Topic:   topic,
			Latency: msg.Latency + momOverhead,
			Stages:  st,
		})
	})
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.sinks = append(m.sinks, sink)
	m.mu.Unlock()
	return nil
}

// Close tears the MoM endpoint down.
func (m *MoM) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	sinks := m.sinks
	m.sinks = nil
	m.mu.Unlock()
	for _, k := range sinks {
		k.Close()
	}
	return m.sess.Close()
}
