package mom

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"github.com/insane-mw/insane/insane"
)

// cluster builds two nodes with the given acceleration support.
func cluster(t *testing.T, spec insane.NodeSpec) *insane.Cluster {
	t.Helper()
	a, b := spec, spec
	a.Name, b.Name = "pub-node", "sub-node"
	c, err := insane.NewCluster(insane.ClusterOptions{Nodes: []insane.NodeSpec{a, b}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// collector accumulates publications thread-safely.
type collector struct {
	mu   sync.Mutex
	msgs [][]byte
	meta []Meta
}

func (c *collector) handler(payload []byte, m Meta) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, append([]byte(nil), payload...))
	c.meta = append(c.meta, m)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func waitCount(t *testing.T, c *collector, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for c.count() < n {
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d messages", c.count(), n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// waitTopicKnown waits until the publishing node learned the topic's
// remote subscription.
func waitTopicKnown(t *testing.T, n *insane.Node, topic string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for n.SubscriberCount(TopicChannel(topic)) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscription for %q not learned", topic)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestPublishSubscribeRemote(t *testing.T) {
	c := cluster(t, insane.NodeSpec{DPDK: true})
	pub, err := New(c.Node("pub-node"), insane.Options{Datapath: insane.Fast})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	sub, err := New(c.Node("sub-node"), insane.Options{Datapath: insane.Fast})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	if pub.Technology() != "dpdk" {
		t.Errorf("Lunar fast technology = %s, want dpdk", pub.Technology())
	}

	col := &collector{}
	if err := sub.Subscribe("factory/line1/camera", col.handler); err != nil {
		t.Fatal(err)
	}
	waitTopicKnown(t, c.Node("pub-node"), "factory/line1/camera")

	msgs := [][]byte{[]byte("frame-1"), []byte("frame-2"), []byte("frame-3")}
	for _, m := range msgs {
		if err := pub.Publish("factory/line1/camera", m); err != nil {
			t.Fatal(err)
		}
	}
	waitCount(t, col, len(msgs))
	for i, want := range msgs {
		if !bytes.Equal(col.msgs[i], want) {
			t.Errorf("msg %d = %q, want %q", i, col.msgs[i], want)
		}
		if col.meta[i].Topic != "factory/line1/camera" {
			t.Errorf("meta topic = %q", col.meta[i].Topic)
		}
		// Lunar fast one-way ≈ INSANE fast (~2.5µs) + ns-scale overhead.
		if col.meta[i].Latency < 2*time.Microsecond || col.meta[i].Latency > 4*time.Microsecond {
			t.Errorf("latency = %v, want ≈2.5µs", col.meta[i].Latency)
		}
	}
}

func TestPublishIntoZeroCopy(t *testing.T) {
	c := cluster(t, insane.NodeSpec{})
	pub, _ := New(c.Node("pub-node"), insane.Options{})
	defer pub.Close()
	sub, _ := New(c.Node("sub-node"), insane.Options{})
	defer sub.Close()

	col := &collector{}
	if err := sub.Subscribe("t", col.handler); err != nil {
		t.Fatal(err)
	}
	waitTopicKnown(t, c.Node("pub-node"), "t")
	err := pub.PublishInto("t", 8, func(dst []byte) int {
		copy(dst, "12345678")
		return 8
	})
	if err != nil {
		t.Fatal(err)
	}
	waitCount(t, col, 1)
	if string(col.msgs[0]) != "12345678" {
		t.Errorf("payload = %q", col.msgs[0])
	}
	// Misbehaving fill callback.
	if err := pub.PublishInto("t", 4, func(dst []byte) int { return 9 }); err == nil {
		t.Error("out-of-bounds fill accepted")
	}
}

func TestTopicIsolation(t *testing.T) {
	c := cluster(t, insane.NodeSpec{})
	pub, _ := New(c.Node("pub-node"), insane.Options{})
	defer pub.Close()
	sub, _ := New(c.Node("sub-node"), insane.Options{})
	defer sub.Close()

	colA, colB := &collector{}, &collector{}
	sub.Subscribe("topic/a", colA.handler)
	sub.Subscribe("topic/b", colB.handler)
	waitTopicKnown(t, c.Node("pub-node"), "topic/a")
	waitTopicKnown(t, c.Node("pub-node"), "topic/b")

	pub.Publish("topic/a", []byte("for A"))
	waitCount(t, colA, 1)
	if colB.count() != 0 {
		t.Error("topic/b received topic/a traffic")
	}
}

func TestLocalPubSubSameNode(t *testing.T) {
	c := cluster(t, insane.NodeSpec{})
	m, _ := New(c.Node("pub-node"), insane.Options{})
	defer m.Close()
	col := &collector{}
	m.Subscribe("loopback", col.handler)
	if err := m.Publish("loopback", []byte("self")); err != nil {
		t.Fatal(err)
	}
	waitCount(t, col, 1)
	if string(col.msgs[0]) != "self" {
		t.Errorf("payload = %q", col.msgs[0])
	}
}

func TestClosedMoM(t *testing.T) {
	c := cluster(t, insane.NodeSpec{})
	m, _ := New(c.Node("pub-node"), insane.Options{})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := m.Publish("t", []byte("x")); err == nil {
		t.Error("publish after close accepted")
	}
	if err := m.Subscribe("t", func([]byte, Meta) {}); err == nil {
		t.Error("subscribe after close accepted")
	}
}

func TestTopicChannelStability(t *testing.T) {
	if TopicChannel("a") != TopicChannel("a") {
		t.Error("TopicChannel not deterministic")
	}
	if TopicChannel("a") == TopicChannel("b") {
		t.Error("trivial collision")
	}
	if TopicChannel("x") < 0x1000 {
		t.Error("channel id in reserved low range")
	}
}
