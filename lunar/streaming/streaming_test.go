package streaming

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/insane-mw/insane/insane"
)

func cluster(t *testing.T, spec insane.NodeSpec) *insane.Cluster {
	t.Helper()
	a, b := spec, spec
	a.Name, b.Name = "camera", "analyzer"
	c, err := insane.NewCluster(insane.ClusterOptions{Nodes: []insane.NodeSpec{a, b}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// pattern fills a deterministic test frame.
func pattern(size int) []byte {
	f := make([]byte, size)
	for i := range f {
		f[i] = byte(i*31 + i/257)
	}
	return f
}

func connectPair(t *testing.T, c *insane.Cluster, name string, opts insane.Options) (*Server, *Client) {
	t.Helper()
	client, err := Connect(c.Node("analyzer"), name, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	// Wait until the server node learns the client's subscription.
	deadline := time.Now().Add(2 * time.Second)
	for c.Node("camera").SubscriberCount(StreamChannel(name)) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream subscription not learned")
		}
		time.Sleep(100 * time.Microsecond)
	}
	server, err := OpenServer(c.Node("camera"), name, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	return server, client
}

func TestSingleFragmentFrame(t *testing.T) {
	c := cluster(t, insane.NodeSpec{DPDK: true})
	srv, cli := connectPair(t, c, "cam0", insane.Options{Datapath: insane.Fast})
	frame := pattern(1000)
	n, err := srv.SendFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("fragments = %d, want 1", n)
	}
	got, err := cli.NextFrame(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, frame) {
		t.Error("frame corrupted")
	}
	if got.Fragments != 1 || got.Latency <= 0 {
		t.Errorf("frame meta = %+v", got)
	}
}

func TestMultiFragmentReassembly(t *testing.T) {
	c := cluster(t, insane.NodeSpec{DPDK: true})
	srv, cli := connectPair(t, c, "cam1", insane.Options{Datapath: insane.Fast})
	// ~5.5 fragments.
	frame := pattern(49_000)
	n, err := srv.SendFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if want := (len(frame) + MaxFragPayload - 1) / MaxFragPayload; n != want {
		t.Errorf("fragments = %d, want %d", n, want)
	}
	got, err := cli.NextFrame(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, frame) {
		t.Error("reassembled frame corrupted")
	}
	if cli.Pending() != 0 {
		t.Errorf("pending assemblies = %d after completion", cli.Pending())
	}
}

func TestHDFrameOverSlowPath(t *testing.T) {
	if testing.Short() {
		t.Skip("HD frame in -short mode")
	}
	c := cluster(t, insane.NodeSpec{})
	srv, cli := connectPair(t, c, "cam2", insane.Options{Datapath: insane.Slow})
	// A genuine HD raw RGB frame from Table 4 (2.76 MB, 311 fragments).
	frame := pattern(2_760_000)
	if _, err := srv.SendFrame(frame); err != nil {
		t.Fatal(err)
	}
	got, err := cli.NextFrame(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, frame) {
		t.Error("HD frame corrupted")
	}
}

func TestConsecutiveFrames(t *testing.T) {
	c := cluster(t, insane.NodeSpec{DPDK: true})
	srv, cli := connectPair(t, c, "cam3", insane.Options{Datapath: insane.Fast})
	for i := 0; i < 5; i++ {
		frame := pattern(20_000 + i)
		if _, err := srv.SendFrame(frame); err != nil {
			t.Fatal(err)
		}
		got, err := cli.NextFrame(5 * time.Second)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got.Data, frame) {
			t.Fatalf("frame %d corrupted", i)
		}
	}
}

// cannedSource serves a fixed list of frames.
type cannedSource struct {
	frames [][]byte
	i      int
}

func (s *cannedSource) GetFrame() ([]byte, error) {
	if s.i >= len(s.frames) {
		return nil, errors.New("out of frames")
	}
	f := s.frames[s.i]
	s.i++
	return f, nil
}

func (s *cannedSource) WaitNext() bool { return s.i < len(s.frames) }

func TestServerLoop(t *testing.T) {
	c := cluster(t, insane.NodeSpec{DPDK: true})
	srv, cli := connectPair(t, c, "cam4", insane.Options{Datapath: insane.Fast})
	src := &cannedSource{frames: [][]byte{pattern(10_000), pattern(12_000), pattern(9_000)}}
	if err := srv.Loop(src); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cli.NextFrame(5 * time.Second); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
}

func TestClosedServerAndClient(t *testing.T) {
	c := cluster(t, insane.NodeSpec{})
	srv, cli := connectPair(t, c, "cam5", insane.Options{})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.SendFrame([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send on closed server = %v", err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.NextFrame(10 * time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Errorf("NextFrame on closed client = %v", err)
	}
	if err := cli.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestEmptyFrameIsOneFragment(t *testing.T) {
	c := cluster(t, insane.NodeSpec{})
	srv, cli := connectPair(t, c, "cam6", insane.Options{})
	n, err := srv.SendFrame(nil)
	if err != nil {
		t.Fatalf("empty frame rejected: %v", err)
	}
	if n != 1 {
		t.Errorf("fragments = %d, want 1 (empty frame still announces itself)", n)
	}
	got, err := cli.NextFrame(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != 0 {
		t.Errorf("empty frame delivered %d bytes", len(got.Data))
	}
}

func TestStreamChannelNamespace(t *testing.T) {
	if StreamChannel("a") == StreamChannel("b") {
		t.Error("trivial collision")
	}
	if StreamChannel("x") < 0x2000 {
		t.Error("channel id outside streaming namespace")
	}
}

// TestLossyLinkDropsFramesButRecovers runs the stream over a lossy fabric:
// frames missing fragments must be dropped (best effort, §5.2), while
// complete frames keep flowing.
func TestLossyLinkDropsFramesButRecovers(t *testing.T) {
	c, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{
			{Name: "camera", DPDK: true},
			{Name: "analyzer", DPDK: true},
		},
		LossRate: 0.02,
		Seed:     77,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Client first (so the SUB has a chance over the lossy control plane;
	// retry until it lands).
	cli, err := Connect(c.Node("analyzer"), "lossy", insane.Options{Datapath: insane.Fast})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	deadline := time.Now().Add(3 * time.Second)
	for c.Node("camera").SubscriberCount(StreamChannel("lossy")) == 0 {
		if time.Now().After(deadline) {
			t.Skip("subscription lost on lossy link")
		}
		extra, err := Connect(c.Node("analyzer"), "lossy", insane.Options{Datapath: insane.Fast})
		if err == nil {
			extra.Close()
		}
		time.Sleep(time.Millisecond)
	}
	srv, err := OpenServer(c.Node("camera"), "lossy", insane.Options{Datapath: insane.Fast})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const frames = 30
	frame := pattern(60_000) // 7 fragments each: ~13% of frames lose one
	for i := 0; i < frames; i++ {
		if _, err := srv.SendFrame(frame); err != nil {
			t.Fatal(err)
		}
	}
	complete := 0
	for {
		f, err := cli.NextFrame(300 * time.Millisecond)
		if err != nil {
			break
		}
		if !bytes.Equal(f.Data, frame) {
			t.Fatal("a delivered frame was corrupted")
		}
		complete++
	}
	if complete == 0 {
		t.Fatal("no frame survived a 2% lossy link")
	}
	if complete == frames && cli.Pending() == 0 {
		t.Log("all frames survived; loss landed between frames") // acceptable
	}
	t.Logf("complete frames: %d of %d (pending assemblies: %d)", complete, frames, cli.Pending())
}

// TestStreamingOverRDMA runs the framework over the RDMA plane: the
// multi-fragment load exercises the receive-credit refill path of the
// verbs plugin.
func TestStreamingOverRDMA(t *testing.T) {
	c := cluster(t, insane.NodeSpec{RDMA: true})
	srv, cli := connectPair(t, c, "cam-rdma", insane.Options{Datapath: insane.Fast})
	if srv.Technology() != "rdma" {
		t.Fatalf("fast stream on RDMA nodes mapped to %s", srv.Technology())
	}
	frame := pattern(120_000) // 14 fragments
	if _, err := srv.SendFrame(frame); err != nil {
		t.Fatal(err)
	}
	got, err := cli.NextFrame(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, frame) {
		t.Error("frame corrupted over RDMA")
	}
}

// TestStreamingHeterogeneousNodes streams from a DPDK camera to a
// kernel-only analyzer: the runtime downgrades transparently, the
// application code is identical.
func TestStreamingHeterogeneousNodes(t *testing.T) {
	c, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{
			{Name: "camera", DPDK: true},
			{Name: "analyzer"}, // no acceleration at all
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cli, err := Connect(c.Node("analyzer"), "hetero", insane.Options{Datapath: insane.Fast})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	deadline := time.Now().Add(2 * time.Second)
	for c.Node("camera").SubscriberCount(StreamChannel("hetero")) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription not learned")
		}
		time.Sleep(100 * time.Microsecond)
	}
	srv, err := OpenServer(c.Node("camera"), "hetero", insane.Options{Datapath: insane.Fast})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Technology() != "dpdk" {
		t.Fatalf("camera stream = %s, want dpdk", srv.Technology())
	}
	frame := pattern(30_000)
	if _, err := srv.SendFrame(frame); err != nil {
		t.Fatal(err)
	}
	got, err := cli.NextFrame(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, frame) {
		t.Error("frame corrupted across heterogeneous planes")
	}
	if c.Node("camera").Stats().TechDowngrades == 0 {
		t.Error("downgrade not counted")
	}
}
