// Package streaming implements Lunar Streaming, the paper's real-time
// data streaming framework built on the INSANE API (§7.2): a server
// fragments application frames (e.g. raw camera images) into
// jumbo-frame-sized chunks and emits them on an INSANE channel; clients
// reassemble the fragments and hand complete frames to the application.
//
// Only fragmentation is implemented — the paper explicitly leaves
// compression out of scope — and delivery is best effort: a frame missing
// any fragment is dropped, consistent with INSANE's QoS philosophy (§5.2)
// that reliability is the application's business.
package streaming

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"github.com/insane-mw/insane/insane"
)

// fragHeaderLen is the per-fragment framing: frame id, fragment index,
// fragment count, total frame length.
const fragHeaderLen = 16

// MaxFragPayload is the data carried per fragment: sized so that a
// fragment plus its headers fits one jumbo frame slot.
const MaxFragPayload = 8900

// Errors of the streaming framework.
var (
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("streaming: closed")
	// ErrFrameTooLarge guards the 32-bit fragment arithmetic.
	ErrFrameTooLarge = errors.New("streaming: frame exceeds 1 GiB")
)

// FrameSource supplies frames to a streaming server: the two-method
// interface the paper prescribes (get_frame / wait_next).
type FrameSource interface {
	// GetFrame returns the next frame to stream.
	GetFrame() ([]byte, error)
	// WaitNext blocks until another frame is due and reports whether
	// streaming should continue.
	WaitNext() bool
}

// StreamChannel maps a stream name to its INSANE channel id.
func StreamChannel(name string) int {
	h := fnv.New32a()
	h.Write([]byte("lunar-streaming/"))
	h.Write([]byte(name))
	return int(h.Sum32()&0x7FFFFFFF | 0x2000)
}

// Server is the sender side (lnr_s_open_server).
//insane:shared
type Server struct {
	sess    *insane.Session //insane:guardedby immutable after=OpenServer
	stream  *insane.Stream  //insane:guardedby immutable after=OpenServer
	src     *insane.Source  //insane:guardedby immutable after=OpenServer
	mu      sync.Mutex
	frameID uint32 //insane:guardedby mu=mu
	closed  bool   //insane:guardedby mu=mu
}

// OpenServer opens the server side of a named stream on a node with the
// given QoS (Lunar fast streams over DPDK, Lunar slow over kernel UDP).
func OpenServer(node *insane.Node, name string, opts insane.Options) (*Server, error) {
	sess, err := node.InitSession()
	if err != nil {
		return nil, err
	}
	stream, err := sess.CreateStreamOpts(insane.WithOptions(opts))
	if err != nil {
		sess.Close()
		return nil, err
	}
	src, err := stream.CreateSource(StreamChannel(name))
	if err != nil {
		sess.Close()
		return nil, err
	}
	return &Server{sess: sess, stream: stream, src: src}, nil
}

// Technology names the mapped network technology.
func (s *Server) Technology() string { return s.stream.Technology() }

// SendFrame fragments one frame and emits every fragment (step ii of
// lnr_s_loop). It returns the number of fragments sent.
func (s *Server) SendFrame(frame []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if len(frame) > 1<<30 {
		return 0, ErrFrameTooLarge
	}
	s.frameID++
	id := s.frameID
	count := (len(frame) + MaxFragPayload - 1) / MaxFragPayload
	if count == 0 {
		count = 1
	}
	for idx := 0; idx < count; idx++ {
		lo := idx * MaxFragPayload
		hi := lo + MaxFragPayload
		if hi > len(frame) {
			hi = len(frame)
		}
		chunk := frame[lo:hi]
		var buf *insane.Buffer
		var err error
		for {
			buf, err = s.src.GetBuffer(fragHeaderLen + len(chunk))
			if !errors.Is(err, insane.ErrNoBuffers) {
				break
			}
			// Pools drained: wait for the receiver to recycle slots.
			time.Sleep(5 * time.Microsecond)
		}
		if err != nil {
			return idx, fmt.Errorf("streaming: fragment %d/%d: %w", idx, count, err)
		}
		binary.BigEndian.PutUint32(buf.Payload[0:4], id)
		binary.BigEndian.PutUint32(buf.Payload[4:8], uint32(idx))
		binary.BigEndian.PutUint32(buf.Payload[8:12], uint32(count))
		binary.BigEndian.PutUint32(buf.Payload[12:16], uint32(len(frame)))
		copy(buf.Payload[fragHeaderLen:], chunk)
		for {
			_, err = s.src.Emit(buf, fragHeaderLen+len(chunk))
			if !errors.Is(err, insane.ErrBackpressure) {
				break
			}
			// The runtime is draining as fast as the datapath allows:
			// yield and retry (flow control by slot recycling).
			time.Sleep(5 * time.Microsecond)
		}
		if err != nil {
			s.src.Abort(buf)
			return idx, err
		}
	}
	return count, nil
}

// Loop runs the paper's lnr_s_loop: request a frame, fragment and send
// it, wait for the next, until the source ends or an error occurs.
func (s *Server) Loop(src FrameSource) error {
	for {
		frame, err := src.GetFrame()
		if err != nil {
			return err
		}
		if _, err := s.SendFrame(frame); err != nil {
			return err
		}
		if !src.WaitNext() {
			return nil
		}
	}
}

// Close shuts the server down.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.sess.Close()
}

// Frame is one reassembled frame delivered to a client.
type Frame struct {
	// ID is the server-assigned frame number.
	ID uint32
	// Data is the reassembled frame content (owned by the receiver).
	Data []byte
	// Latency is the end-to-end virtual time from first emission to
	// reassembly completion.
	Latency time.Duration
	// Stages splits the latency of the slowest fragment (the one that
	// completed the frame) by pipeline stage.
	Stages insane.Stages
	// Fragments is how many fragments composed the frame.
	Fragments int
}

// Client is the receiver side (lnr_s_connect).
//insane:shared
type Client struct {
	sess   *insane.Session //insane:guardedby immutable after=Connect
	stream *insane.Stream  //insane:guardedby immutable after=Connect
	sink   *insane.Sink    //insane:guardedby immutable after=Connect

	mu       sync.Mutex
	building map[uint32]*assembly //insane:guardedby mu=mu
	ready    []Frame              //insane:guardedby mu=mu
	// notify is created once in Connect and only ever sent to / received
	// from afterwards (channel ops are internally synchronized), so it is
	// deliberately not under mu: Receive blocks on it after unlocking.
	notify  chan struct{} //insane:guardedby immutable after=Connect
	dropped uint64        //insane:guardedby mu=mu
	closed  bool          //insane:guardedby mu=mu
}

// assembly is a frame being reassembled.
type assembly struct {
	data    []byte
	seen    []bool
	missing int
	latency time.Duration
	stages  insane.Stages
}

// Connect opens the client side of a named stream.
func Connect(node *insane.Node, name string, opts insane.Options) (*Client, error) {
	sess, err := node.InitSession()
	if err != nil {
		return nil, err
	}
	stream, err := sess.CreateStreamOpts(insane.WithOptions(opts))
	if err != nil {
		sess.Close()
		return nil, err
	}
	c := &Client{
		sess:     sess,
		stream:   stream,
		building: make(map[uint32]*assembly),
		notify:   make(chan struct{}, 1),
	}
	sink, err := stream.CreateSink(StreamChannel(name), c.onFragment)
	if err != nil {
		sess.Close()
		return nil, err
	}
	c.sink = sink
	return c, nil
}

// onFragment integrates one received fragment, completing frames as the
// last fragment lands. The payload copy below is the reassembly copy the
// paper identifies as unavoidable without RDMA (§8).
func (c *Client) onFragment(m *insane.Message) {
	if len(m.Payload) < fragHeaderLen {
		return
	}
	id := binary.BigEndian.Uint32(m.Payload[0:4])
	idx := int(binary.BigEndian.Uint32(m.Payload[4:8]))
	count := int(binary.BigEndian.Uint32(m.Payload[8:12]))
	total := int(binary.BigEndian.Uint32(m.Payload[12:16]))
	chunk := m.Payload[fragHeaderLen:]
	if count <= 0 || idx < 0 || idx >= count || total < 0 || total > 1<<30 {
		return
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	asm, ok := c.building[id]
	if !ok {
		asm = &assembly{data: make([]byte, total), seen: make([]bool, count), missing: count}
		c.building[id] = asm
	}
	if asm.seen[idx] {
		return // duplicate
	}
	lo := idx * MaxFragPayload
	if lo+len(chunk) > len(asm.data) {
		return // inconsistent fragment
	}
	copy(asm.data[lo:], chunk)
	asm.seen[idx] = true
	asm.missing--
	if m.Latency > asm.latency {
		asm.latency = m.Latency
		asm.stages = m.Stages()
	}
	if asm.missing > 0 {
		return
	}
	delete(c.building, id)
	c.ready = append(c.ready, Frame{
		ID:        id,
		Data:      asm.data,
		Latency:   asm.latency,
		Stages:    asm.stages,
		Fragments: count,
	})
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

// NextFrame returns the next complete frame, waiting up to timeout.
func (c *Client) NextFrame(timeout time.Duration) (Frame, error) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return Frame{}, ErrClosed
		}
		if len(c.ready) > 0 {
			f := c.ready[0]
			c.ready = c.ready[1:]
			c.mu.Unlock()
			return f, nil
		}
		c.mu.Unlock()
		select {
		case <-c.notify:
		case <-deadline.C:
			return Frame{}, fmt.Errorf("streaming: no frame within %v", timeout)
		}
	}
}

// Pending reports frames currently under reassembly (diagnostics).
func (c *Client) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.building)
}

// Close shuts the client down.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.sess.Close()
}
