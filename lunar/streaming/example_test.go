package streaming_test

import (
	"fmt"
	"time"

	"github.com/insane-mw/insane/insane"
	"github.com/insane-mw/insane/lunar/streaming"
)

// Example streams one frame through the fragmentation/reassembly path.
func Example() {
	cluster, err := insane.NewCluster(insane.ClusterOptions{
		Nodes: []insane.NodeSpec{
			{Name: "camera", DPDK: true},
			{Name: "analyzer", DPDK: true},
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer cluster.Close()

	client, _ := streaming.Connect(cluster.Node("analyzer"), "cam0",
		insane.Options{Datapath: insane.Fast})
	defer client.Close()
	for cluster.Node("camera").SubscriberCount(streaming.StreamChannel("cam0")) == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	server, _ := streaming.OpenServer(cluster.Node("camera"), "cam0",
		insane.Options{Datapath: insane.Fast})
	defer server.Close()

	frame := make([]byte, 20_000)
	frags, _ := server.SendFrame(frame)
	got, _ := client.NextFrame(5 * time.Second)
	fmt.Printf("frame of %d bytes arrived in %d fragments\n", len(got.Data), frags)
	// Output:
	// frame of 20000 bytes arrived in 3 fragments
}
